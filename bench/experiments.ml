(* Reproduction of every table and figure in the paper's evaluation
   (section 6), plus the ablations called out in DESIGN.md.  Each function
   prints the same rows/series the paper reports; shapes (who wins, how
   things scale) are the claim, not absolute numbers. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Stats = Zapc_sim.Stats
module Value = Zapc_codec.Value
module Kernel = Zapc_simos.Kernel
module Proc = Zapc_simos.Proc
module Pod = Zapc_pod.Pod
module Cluster = Zapc.Cluster
module Manager = Zapc.Manager
module Protocol = Zapc.Protocol
module Params = Zapc.Params
module Launch = Zapc_msg.Launch
open Driver

(* ------------------------------------------------------------------ *)
(* Figure 5: application completion times, Base vs ZapC                *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  section
    "FIG-5  Application completion times: vanilla (Base) vs ZapC pods\n\
    \       (paper: ZapC is almost indistinguishable from vanilla Linux)";
  row "%-12s %6s %12s %12s %10s\n" "app" "nodes" "base (s)" "zapc (s)" "overhead";
  List.iter
    (fun kind ->
      List.iter
        (fun n ->
          let base = completion_run kind n Base in
          let zapc = completion_run kind n Zapc_mode in
          row "%-12s %6d %12.2f %12.2f %9.2f%%\n" (app_label kind) n base zapc
            ((zapc -. base) /. base *. 100.0))
        (node_counts kind);
      print_newline ())
    all_apps

(* variance over seeds (paper section 6.1: std-dev grows to ~5%) *)
let fig5_variance () =
  section "TXT-VAR  Completion-time variance across runs (5 seeds, ZapC)";
  row "%-12s %6s %12s %10s\n" "app" "nodes" "mean (s)" "stddev";
  List.iter
    (fun kind ->
      List.iter
        (fun n ->
          let st = Stats.create () in
          for seed = 1 to 5 do
            Stats.add st (completion_run ~seed:(42 + (seed * 1000)) kind n Zapc_mode)
          done;
          row "%-12s %6d %12.2f %9.2f%%\n" (app_label kind) n (Stats.mean st)
            (Stats.stddev st /. Stats.mean st *. 100.0))
        [ List.hd (node_counts kind); List.hd (List.rev (node_counts kind)) ])
    [ Cpi; Bt ]

(* ------------------------------------------------------------------ *)
(* Figure 6: checkpoint-restart measurements                           *)
(* ------------------------------------------------------------------ *)

let fig6_series : (app_kind * int * ckpt_series) list ref = ref []

let collect_fig6 () =
  if !fig6_series = [] then
    fig6_series :=
      List.concat_map
        (fun kind ->
          List.map (fun n -> (kind, n, checkpoint_run kind n)) (node_counts kind))
        all_apps

let fig6a () =
  collect_fig6 ();
  section
    "FIG-6a  Average checkpoint time (Manager invocation -> all pods done)\n\
    \        (paper: subsecond, 100-300 ms across apps; includes writing the\n\
    \        image to memory, excludes the flush to disk)";
  row "%-12s %6s %14s %10s %10s\n" "app" "nodes" "ckpt avg (ms)" "stddev" "max";
  List.iter
    (fun (kind, n, s) ->
      row "%-12s %6d %14.1f %10.1f %10.1f\n" (app_label kind) n (Stats.mean s.ckpt_times)
        (Stats.stddev s.ckpt_times) (Stats.max s.ckpt_times))
    !fig6_series

let fig6b () =
  collect_fig6 ();
  section
    "FIG-6b  Restart time from the mid-run checkpoint (image preloaded)\n\
    \        (paper: subsecond, 200-700 ms; restart > checkpoint because the\n\
    \        network connections must be re-established)";
  row "%-12s %6s %14s %12s %12s\n" "app" "nodes" "restart (ms)" "conn (ms)" "net (ms)";
  List.iter
    (fun (kind, n, s) ->
      row "%-12s %6d %14.1f %12.1f %12.1f\n" (app_label kind) n s.restart_time
        (Stats.max s.restart_conn) (Stats.max s.restart_net))
    !fig6_series

let fig6c () =
  collect_fig6 ();
  section
    "FIG-6c  Checkpoint image size: largest pod, averaged over 10 checkpoints\n\
    \        (paper: CPI 16->7 MB, PETSc 145->24 MB, BT 340->35 MB as nodes\n\
    \        grow; POV-Ray roughly constant ~10 MB)";
  row "%-12s %6s %16s\n" "app" "nodes" "image (MB)";
  List.iter
    (fun (kind, n, s) ->
      row "%-12s %6d %16.1f\n" (app_label kind) n (Stats.mean s.max_image))
    !fig6_series

let netstate () =
  collect_fig6 ();
  section
    "TXT-NET  Network-state share of the checkpoint\n\
    \         (paper: network-state checkpoint < 10 ms -- 3-10%% of the total;\n\
    \         network-state data only 100s of bytes to a few KB per pod)";
  row "%-12s %6s %14s %12s %16s\n" "app" "nodes" "net ckpt (ms)" "of total" "net bytes avg";
  List.iter
    (fun (kind, n, s) ->
      let frac =
        if Stats.mean s.ckpt_times > 0.0 then
          Stats.mean s.net_ckpt_times /. Stats.mean s.ckpt_times *. 100.0
        else 0.0
      in
      row "%-12s %6d %14.3f %11.1f%% %16.0f\n" (app_label kind) n
        (Stats.mean s.net_ckpt_times) frac (Stats.mean s.net_bytes))
    !fig6_series

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

(* ABL-1: the single-synchronization design.  ZapC overlaps the standalone
   checkpoint with the Manager round-trip; the serial variant waits for
   'continue' first. *)
let ablation_serial () =
  section
    "ABL-1  Network-state-first + overlapped standalone checkpoint vs a\n\
    \       serial barrier before the standalone checkpoint (paper section 4).\n\
    \       The overlap hides the Manager synchronization round-trip, so the\n\
    \       saving equals roughly the control-plane RTT; shown for the\n\
    \       cluster-local Manager and for a distant/loaded one.";
  row "%-12s %6s %12s %16s %14s %10s\n" "app" "nodes" "ctrl RTT" "overlapped (ms)"
    "serial (ms)" "saving";
  List.iter
    (fun (kind, n, ctrl_latency, label) ->
      let measure serial =
        let params =
          { Params.default with Params.serial_ckpt = serial; ctrl_latency;
            cost_jitter = 0.0 }
        in
        let env = launch_app ~params kind n in
        Cluster.run env.cluster ~until:(Simtime.sec 2.0) ();
        let r =
          Cluster.checkpoint_sync env.cluster
            ~items:(items_for env.cluster env.app ~prefix:"abl1")
            ~resume:true
        in
        if r.Manager.r_ok then Simtime.to_ms r.Manager.r_duration else nan
      in
      let fast = measure false in
      let slow = measure true in
      row "%-12s %6d %12s %16.1f %14.1f %7.1fms\n" (app_label kind) n label fast slow
        (slow -. fast))
    [ (Cpi, 4, Simtime.us 120, "120us"); (Bt, 4, Simtime.us 120, "120us");
      (Cpi, 8, Simtime.ms 5, "5ms"); (Bt, 4, Simtime.ms 5, "5ms");
      (Bratu, 8, Simtime.ms 20, "20ms") ]

(* ABL-2: send-queue redirection during migration (paper section 5): the
   queue travels once, inside the peer's checkpoint stream, instead of being
   retransmitted after restart. *)
let ablation_redirect () =
  Workloads.register ();
  section
    "ABL-2  Send-queue redirection on migration (paper section 5 optimization)\n\
    \       bulk transfer with ~deep queues, checkpointed mid-stream";
  row "%-18s %14s %18s\n" "mode" "restart (ms)" "bytes re-sent";
  let run_case redirect =
    let params = { Params.default with Params.redirect_sendq = redirect } in
    Zapc_apps.Registry.register_all ();
    let cluster = Cluster.make ~seed:7 ~params ~node_count:4 () in
    let sink_pod = Cluster.create_pod cluster ~node_idx:0 ~name:"sink" in
    let sender_pod = Cluster.create_pod cluster ~node_idx:1 ~name:"sender" in
    Cluster.link_pods [ sink_pod; sender_pod ];
    let _sink = Pod.spawn sink_pod ~program:"bench.bulk_sink" ~args:(Value.Int 6200) in
    let _sender =
      Pod.spawn sender_pod ~program:"bench.bulk_sender"
        ~args:
          (Value.assoc
             [ ("dst", Value.int sink_pod.Pod.vip); ("port", Value.int 6200);
               ("chunks", Value.int 64) ])
    in
    (* sender floods; sink drains slowly: big queues by 100 ms *)
    Cluster.run cluster ~until:(Simtime.ms 100) ();
    let r =
      Cluster.checkpoint_sync cluster
        ~items:
          [ { Manager.ci_node = 0; ci_pod = sink_pod.Pod.pod_id;
              ci_dest = Protocol.U_storage "abl2.sink" };
            { Manager.ci_node = 1; ci_pod = sender_pod.Pod.pod_id;
              ci_dest = Protocol.U_storage "abl2.sender" } ]
        ~resume:false
    in
    assert r.Manager.r_ok;
    let bytes_before = Zapc_simnet.Fabric.bytes_delivered (Cluster.fabric cluster) in
    let rr =
      Cluster.restart_sync cluster
        ~items:
          [ { Manager.ri_node = 2; ri_pod = sink_pod.Pod.pod_id;
              ri_uri = Protocol.U_storage "abl2.sink" };
            { Manager.ri_node = 3; ri_pod = sender_pod.Pod.pod_id;
              ri_uri = Protocol.U_storage "abl2.sender" } ]
    in
    let bytes_after = Zapc_simnet.Fabric.bytes_delivered (Cluster.fabric cluster) in
    ( (if rr.Manager.r_ok then Simtime.to_ms rr.Manager.r_duration else nan),
      bytes_after - bytes_before )
  in
  let t_off, b_off = run_case false in
  let t_on, b_on = run_case true in
  row "%-18s %14.1f %18d\n" "resend (baseline)" t_off b_off;
  row "%-18s %14.1f %18d\n" "redirected" t_on b_on;
  row "-> the redirected variant moves %.0f%% fewer bytes during restart\n"
    ((1.0 -. (float_of_int b_on /. float_of_int b_off)) *. 100.0)

(* ABL-2b: the same choice while the application is a live service under
   outside traffic.  The kv shards replicate to each other over an in-set
   connection whose send queues are deep while 800 clients keep both pods
   loaded; the whole service is migrated ZapC-style (coordinated suspend,
   restart on new nodes) with redirection on and off.  Client connections
   terminate outside the checkpoint set, so only the replication stream is
   redirected — the win is smaller than ABL-2's bulk pair, but it is the
   serving-path number: bytes the fabric moves again while clients are
   already retrying into the restart. *)
let ablation_redirect_traffic () =
  section
    "ABL-2b Send-queue redirection while migrating a live service\n\
    \       (kv shards + replication stream under 800 client connections)";
  row "%-18s %14s %18s\n" "mode" "restart (ms)" "bytes re-sent";
  let module Serve = Zapc_apps.Serve in
  let run_case redirect =
    let params = { Serve.serve_params with Params.redirect_sendq = redirect } in
    let cfg =
      { Serve.default_cfg with
        n_conns = 800; reqs_per_conn = 8; period = Simtime.ms 60 }
    in
    let t = Serve.setup ~nodes:4 ~seed:7 ~params ~cfg () in
    let cluster = t.Serve.cluster in
    (* peak load: every connection established, replication in flight *)
    Cluster.run cluster ~until:(Simtime.ms 120) ();
    (* a drop window on the mirror backs the owner's replication send
       queue up with unacked frames — the deep-queue regime the
       redirection decides; without it both shards' queues are drained at
       any instant a healthy service is suspended *)
    let nf = Zapc_simnet.Fabric.netfilter (Cluster.fabric cluster) in
    let mirror = List.nth t.Serve.servers 1 in
    Zapc_simnet.Netfilter.block nf mirror.Pod.rip;
    Zapc_simnet.Netfilter.block nf mirror.Pod.vip;
    Cluster.run cluster ~until:(Simtime.ms 170) ();
    let items = Serve.ckpt_items t ~prefix:"abl2kv" in
    let r = Cluster.checkpoint_sync cluster ~items ~resume:false in
    assert r.Manager.r_ok;
    Zapc_simnet.Netfilter.unblock nf mirror.Pod.rip;
    Zapc_simnet.Netfilter.unblock nf mirror.Pod.vip;
    let bytes_before = Zapc_simnet.Fabric.bytes_delivered (Cluster.fabric cluster) in
    let rr =
      Cluster.restart_app cluster
        ~pod_ids:(List.map (fun (p : Pod.t) -> p.Pod.pod_id) t.Serve.servers)
        ~target_nodes:[ 2; 3 ] ~key_prefix:"abl2kv"
    in
    assert rr.Manager.r_ok;
    let bytes_after = Zapc_simnet.Fabric.bytes_delivered (Cluster.fabric cluster) in
    (Simtime.to_ms rr.Manager.r_duration, bytes_after - bytes_before)
  in
  let t_off, b_off = run_case false in
  let t_on, b_on = run_case true in
  row "%-18s %14.1f %18d\n" "resend (baseline)" t_off b_off;
  row "%-18s %14.1f %18d\n" "redirected" t_on b_on;
  if b_off > 0 then
    row "-> redirection saves %.0f%% of the restart-window fabric traffic\n"
      ((1.0 -. (float_of_int b_on /. float_of_int b_off)) *. 100.0)

(* ABL-3: peek-based receive-queue capture (the Cruz-style approach the
   paper criticises) silently loses the urgent byte; ZapC's read-inject
   extraction does not. *)
let ablation_peek () =
  Workloads.register ();
  section
    "ABL-3  Receive-queue capture method: ZapC read-inject vs peek (Cruz-style)\n\
    \       checkpoint taken with stream data + an urgent byte pending";
  row "%-18s %-40s\n" "mode" "receiver observation after restart";
  let logged = ref [] in
  let run_case peek =
    logged := [];
    let params = { Params.default with Params.peek_mode = peek } in
    Zapc_apps.Registry.register_all ();
    let cluster = Cluster.make ~seed:5 ~params ~node_count:4 () in
    for i = 0 to 3 do
      Kernel.set_logger (Cluster.node cluster i).Cluster.n_kernel (fun _ _ m ->
          logged := m :: !logged)
    done;
    let rpod = Cluster.create_pod cluster ~node_idx:0 ~name:"oobr" in
    let spod = Cluster.create_pod cluster ~node_idx:1 ~name:"oobs" in
    Cluster.link_pods [ rpod; spod ];
    let _r = Pod.spawn rpod ~program:"bench.oob_recv" ~args:(Value.Int 6300) in
    let _s =
      Pod.spawn spod ~program:"bench.oob_send"
        ~args:(Value.assoc [ ("dst", Value.int rpod.Pod.vip); ("port", Value.int 6300) ])
    in
    (* data + urgent byte are queued at the receiver while it sleeps *)
    Cluster.run cluster ~until:(Simtime.ms 60) ();
    let r =
      Cluster.checkpoint_sync cluster
        ~items:
          [ { Manager.ci_node = 0; ci_pod = rpod.Pod.pod_id;
              ci_dest = Protocol.U_storage "abl3.r" };
            { Manager.ci_node = 1; ci_pod = spod.Pod.pod_id;
              ci_dest = Protocol.U_storage "abl3.s" } ]
        ~resume:false
    in
    assert r.Manager.r_ok;
    let rr =
      Cluster.restart_sync cluster
        ~items:
          [ { Manager.ri_node = 2; ri_pod = rpod.Pod.pod_id;
              ri_uri = Protocol.U_storage "abl3.r" };
            { Manager.ri_node = 3; ri_pod = spod.Pod.pod_id;
              ri_uri = Protocol.U_storage "abl3.s" } ]
    in
    assert rr.Manager.r_ok;
    Cluster.run_until cluster ~timeout:(Simtime.sec 60.0) (fun () ->
        List.exists
          (fun m -> String.length m >= 7 && String.equal (String.sub m 0 7) "oob got")
          !logged);
    List.find
      (fun m -> String.length m >= 7 && String.equal (String.sub m 0 7) "oob got")
      !logged
  in
  let proper = run_case false in
  let peeked = run_case true in
  row "%-18s %-40s\n" "read-inject (ZapC)" proper;
  row "%-18s %-40s\n" "peek (Cruz-style)" peeked

let ablations () =
  ablation_serial ();
  ablation_redirect ();
  ablation_redirect_traffic ();
  ablation_peek ()

(* ------------------------------------------------------------------ *)
(* Figure-2 timeline and storage-flush methodology                     *)
(* ------------------------------------------------------------------ *)

let timeline () =
  section
    "FIG-2  Coordinated checkpoint timeline (BT/NAS on 4 nodes): the single\n\
    \       synchronization point — 'continue' lands DURING the standalone\n\
    \       checkpoints; network stays blocked only until both conditions hold";
  let env = launch_app Bt 4 in
  let tr = Cluster.enable_trace env.cluster in
  Cluster.run env.cluster ~until:(Simtime.sec 2.0) ();
  let r =
    Cluster.checkpoint_sync env.cluster ~items:(items_for env.cluster env.app ~prefix:"tl")
      ~resume:true
  in
  if r.Manager.r_ok then begin
    print_string (Zapc.Trace.render_checkpoint tr);
    (* same timeline as Chrome trace_event JSON: load in chrome://tracing or
       https://ui.perfetto.dev and the per-pod standalone tracks visibly
       straddle the manager's mgr_sync track (doc/OBSERVABILITY.md) *)
    Zapc.Trace.dump_chrome tr "BENCH_timeline_trace.json";
    Printf.printf "\nwrote BENCH_timeline_trace.json\n"
  end

let storage_flush () =
  section
    "STORAGE  Image flush to shared storage (excluded from checkpoint time,\n\
    \         per the paper's methodology; shown here for completeness at the\n\
    \         SAN's 180 MB/s)";
  row "%-12s %6s %12s %14s\n" "app" "nodes" "image (MB)" "flush (ms)";
  List.iter
    (fun (kind, n) ->
      let env = launch_app kind n in
      Cluster.run env.cluster ~until:(Simtime.sec 2.0) ();
      let prefix = "flush" in
      let r =
        Cluster.checkpoint_sync env.cluster ~items:(items_for env.cluster env.app ~prefix)
          ~resume:true
      in
      if r.Manager.r_ok then begin
        let storage = Cluster.storage env.cluster in
        let largest_key, largest =
          List.fold_left
            (fun (bk, bs) (pod, st) ->
              if st.Protocol.st_image_bytes > bs then
                (Printf.sprintf "%s.pod%d" prefix pod, st.Protocol.st_image_bytes)
              else (bk, bs))
            ("", 0) r.Manager.r_stats
        in
        let t = Zapc.Storage.flush_time storage largest_key in
        row "%-12s %6d %12.1f %14.1f\n" (app_label kind) n
          (float_of_int largest /. 1e6) (Simtime.to_ms t)
      end)
    [ (Cpi, 4); (Bt, 1); (Bt, 4); (Bratu, 4); (Povray, 4) ]

(* ------------------------------------------------------------------ *)
(* Storage backends: compression + dedup + buddy RAM (@store alias)    *)
(* ------------------------------------------------------------------ *)

(* Not in the paper (its images always land on the shared SAN): sweeps the
   three storage backends of DESIGN.md section 14 over a 16-rank BT/NAS
   epoch series and a checkpointed kv service, and enforces the claims
   that justify them:
     - content-addressed dedup collapses the cross-rank/cross-epoch
       redundancy of the BT images by more than 2x;
     - buddy (partner-RAM) flushes beat the serialized shared-SAN flush
       makespan at fleet scale;
     - whatever the backend does to the stored bytes, the images read
       back for restart are checksum-identical.
   All quantities are virtual and deterministic; dumped to
   BENCH_storage.json and regression-gated against
   bench/baselines/storage.json by the @store alias. *)

let st_epochs = 4
let st_ranks = 16

type st_row = {
  st_label : string;
  st_written_mb : float;  (* storage.bytes_written over all epochs *)
  st_dedup : float;       (* logical/unique bytes; 1.0 off the dedup path *)
  st_comp : float;        (* compress_in/compress_out; 1.0 uncompressed *)
  st_flush_ms : float;    (* makespan, all last-epoch images, contended *)
  st_sums : (string * int) list array;  (* per-epoch key -> image checksum *)
}

(* Checkpoint epochs land at fixed virtual times, so every backend that
   charges the same checkpoint cost captures bit-identical application
   states.  Compression charges extra virtual CPU, which shifts the
   post-resume execution — only its epoch-0 images (taken before any
   backend-dependent cost was paid) are comparable across the sweep. *)
let st_case ?traced (label, sbackend, scompress) =
  let params =
    { Params.default with
      Params.storage_backend = sbackend; compress = scompress }
  in
  let env = launch_app ~params Bt st_ranks in
  let cluster = env.cluster in
  let storage = Cluster.storage cluster in
  let metrics = Cluster.metrics cluster in
  let sums = Array.make st_epochs [] in
  for e = 0 to st_epochs - 1 do
    (if e = st_epochs - 1 then
       match traced with
       | Some _ -> ignore (Cluster.enable_trace cluster)
       | None -> ());
    Cluster.run cluster ~until:(Simtime.sec (0.4 *. float_of_int (e + 1))) ();
    let prefix = Printf.sprintf "e%d" e in
    let r =
      Cluster.checkpoint_sync cluster
        ~items:(items_for cluster env.app ~prefix) ~resume:true
    in
    if not r.Manager.r_ok then
      failwith
        (Printf.sprintf "storage: %s epoch %d failed: %s" label e
           r.Manager.r_detail);
    sums.(e) <-
      List.map
        (fun (p : Pod.t) ->
          let key = Printf.sprintf "%s.pod%d" prefix p.Pod.pod_id in
          match Zapc.Storage.get storage key with
          | Some img -> (key, Zapc_ckpt.Image.checksum img)
          | None ->
            failwith
              (Printf.sprintf "storage: %s lost %s right after writing it"
                 label key))
        env.app.Launch.pods
  done;
  (match traced with
   | Some path ->
     (match Cluster.trace cluster with
      | Some tr ->
        Zapc.Trace.dump_chrome tr path;
        Zapc_obs.Metrics.dump metrics "BENCH_storage_metrics.json"
      | None -> ())
   | None -> ());
  let counter = Zapc_obs.Metrics.counter metrics in
  let dl = counter "storage.dedup_bytes_logical" in
  let du = counter "storage.dedup_bytes_unique" in
  let ci = counter "storage.compress_in_bytes" in
  let co = counter "storage.compress_out_bytes" in
  (* contended flush of the freshest epoch: all ranks push at once, the
     SAN serializes them behind one shared link while buddy rides the
     per-owner links in parallel *)
  let keys = List.map fst sums.(st_epochs - 1) in
  let t0 = Cluster.now cluster in
  let pending = ref (List.length keys) in
  let finish = ref t0 in
  List.iter
    (fun k ->
      Zapc.Storage.flush storage k ~on_done:(fun () ->
          decr pending;
          finish := Simtime.max !finish (Cluster.now cluster)))
    keys;
  Cluster.run_until cluster ~timeout:(Simtime.sec 600.0) (fun () ->
      !pending = 0);
  if !pending > 0 then
    failwith (Printf.sprintf "storage: %s flushes never completed" label);
  { st_label = label;
    st_written_mb = float_of_int (counter "storage.bytes_written") /. 1e6;
    st_dedup =
      (if du > 0 then float_of_int dl /. float_of_int du else 1.0);
    st_comp = (if co > 0 then float_of_int ci /. float_of_int co else 1.0);
    st_flush_ms = Simtime.to_ms (Simtime.sub !finish t0);
    st_sums = sums }

(* The kv-service leg: one checkpoint of the sharded service under load,
   taken at the same instant for every backend — written bytes differ,
   the images must not. *)
let st_kv_case (label, sbackend, scompress) =
  let module Serve = Zapc_apps.Serve in
  let params =
    { Serve.serve_params with
      Params.storage_backend = sbackend; compress = scompress }
  in
  let cfg =
    { Serve.default_cfg with Serve.n_conns = 200; reqs_per_conn = 4 }
  in
  let t = Serve.setup ~nodes:4 ~seed:7 ~params ~cfg () in
  let cluster = t.Serve.cluster in
  Cluster.run cluster ~until:(Simtime.ms 150) ();
  let r =
    Cluster.checkpoint_sync cluster
      ~items:(Serve.ckpt_items t ~prefix:"kv") ~resume:false
  in
  if not r.Manager.r_ok then
    failwith ("storage/kv: " ^ label ^ ": " ^ r.Manager.r_detail);
  let storage = Cluster.storage cluster in
  let sums =
    List.map
      (fun (p : Pod.t) ->
        let key = Printf.sprintf "kv.pod%d" p.Pod.pod_id in
        match Zapc.Storage.get storage key with
        | Some img -> (key, Zapc_ckpt.Image.checksum img)
        | None -> failwith ("storage/kv: " ^ label ^ " lost " ^ key))
      t.Serve.servers
  in
  let counter = Zapc_obs.Metrics.counter (Cluster.metrics cluster) in
  let dl = counter "storage.dedup_bytes_logical" in
  let du = counter "storage.dedup_bytes_unique" in
  ( label,
    float_of_int (counter "storage.bytes_written") /. 1e6,
    (if du > 0 then float_of_int dl /. float_of_int du else 1.0),
    sums )

let st_json path rows kv_rows =
  let oc = open_out path in
  let field r =
    Printf.sprintf
      "    {\"label\": \"%s\", \"written_mb\": %.1f, \"dedup_factor\": %.2f, \
       \"compress_ratio\": %.2f, \"flush_makespan_ms\": %.1f}"
      r.st_label r.st_written_mb r.st_dedup r.st_comp r.st_flush_ms
  in
  let kv_field (label, mb, dd, _) =
    Printf.sprintf
      "    {\"label\": \"%s\", \"written_mb\": %.1f, \"dedup_factor\": %.2f}"
      label mb dd
  in
  let find l = List.find (fun r -> String.equal r.st_label l) rows in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"storage\",\n\
    \  \"scenario\": \"%d BT/NAS ranks, %d full checkpoint epochs, then a \
     contended flush of the last epoch; plus one checkpoint of the sharded \
     kv service under 200 connections\",\n\
    \  \"source\": \"storage.* counters (see doc/OBSERVABILITY.md)\",\n\
    \  \"bt_sweep\": [\n%s\n  ],\n\
    \  \"kv_sweep\": [\n%s\n  ],\n\
    \  \"dedup_factor_floor\": 2.0,\n\
    \  \"buddy_vs_san_flush_speedup\": %.2f,\n\
    \  \"restart_checksums_equal\": 1\n\
     }\n"
    st_ranks st_epochs
    (String.concat ",\n" (List.map field rows))
    (String.concat ",\n" (List.map kv_field kv_rows))
    ((find "plain").st_flush_ms /. (find "buddy").st_flush_ms);
  close_out oc

let storage_backends () =
  section
    "STORAGE-B  Image storage backends: plain SAN vs compressed vs\n\
    \           content-addressed dedup vs partner-RAM buddy\n\
    \           (16-rank BT/NAS, 4 full epochs + contended flush; kv leg)";
  row "%-12s %12s %8s %10s %12s\n" "backend" "written (MB)" "dedup"
    "compress" "flush (ms)";
  let cases =
    [ ("plain", Params.Sb_plain, false);
      ("plain+comp", Params.Sb_plain, true);
      ("dedup", Params.Sb_dedup, false);
      ("dedup+comp", Params.Sb_dedup, true);
      ("buddy", Params.Sb_buddy, false) ]
  in
  let rows =
    List.map
      (fun ((label, _, _) as case) ->
        let traced =
          if String.equal label "dedup" then Some "BENCH_storage_trace.json"
          else None
        in
        let r = st_case ?traced case in
        row "%-12s %12.1f %7.2fx %9.2fx %12.1f\n" r.st_label r.st_written_mb
          r.st_dedup r.st_comp r.st_flush_ms;
        r)
      cases
  in
  let find l = List.find (fun r -> String.equal r.st_label l) rows in
  let plain = find "plain" and dedup = find "dedup" and buddy = find "buddy" in
  (* claim 1: cross-rank + cross-epoch dedup beats 2x on the BT sweep *)
  if dedup.st_dedup < 2.0 then
    failwith
      (Printf.sprintf "storage: dedup factor %.2fx under the 2x floor"
         dedup.st_dedup);
  (* claim 2: buddy flushes in parallel across partner links, under the
     serialized SAN makespan *)
  if buddy.st_flush_ms >= plain.st_flush_ms then
    failwith
      (Printf.sprintf
         "storage: buddy flush %.1fms not under the SAN's %.1fms"
         buddy.st_flush_ms plain.st_flush_ms);
  (* claim 3: the bytes a restart reads are backend-independent — every
     epoch for the equal-cost backends, epoch 0 for the compressed ones
     (their extra virtual CPU shifts post-resume application state) *)
  let check_sums ~epochs other =
    for e = 0 to epochs - 1 do
      if other.st_sums.(e) <> plain.st_sums.(e) then
        failwith
          (Printf.sprintf
             "storage: %s epoch-%d images differ from plain's" other.st_label
             e)
    done
  in
  check_sums ~epochs:st_epochs dedup;
  check_sums ~epochs:st_epochs buddy;
  check_sums ~epochs:1 (find "plain+comp");
  check_sums ~epochs:1 (find "dedup+comp");
  row "-> dedup %.2fx over the 2x floor; buddy flush %.1fx under the SAN\n"
    dedup.st_dedup
    (plain.st_flush_ms /. buddy.st_flush_ms);
  let kv_cases =
    [ ("kv-plain", Params.Sb_plain, false);
      ("kv-dedup", Params.Sb_dedup, false);
      ("kv-buddy", Params.Sb_buddy, false) ]
  in
  let kv_rows = List.map st_kv_case kv_cases in
  List.iter
    (fun (label, mb, dd, _) ->
      row "%-12s %12.1f %7.2fx\n" label mb dd)
    kv_rows;
  (match kv_rows with
   | (_, _, _, ref_sums) :: rest ->
     List.iter
       (fun (label, _, _, sums) ->
         if sums <> ref_sums then
           failwith ("storage/kv: " ^ label ^ " images differ from plain's"))
       rest
   | [] -> ());
  let path = "BENCH_storage.json" in
  st_json path rows kv_rows;
  Printf.printf
    "\nwrote %s BENCH_storage_trace.json BENCH_storage_metrics.json\n" path

(* ------------------------------------------------------------------ *)
(* Availability: supervisor detection latency and MTTR                 *)
(* ------------------------------------------------------------------ *)

(* Not in the paper (its recovery is operator-driven); this measures the
   self-healing supervisor added on top: a node crashes mid-run, the
   missed-heartbeat detector fires, and the service restarts from the last
   good epoch on the survivors.  Reported per seed: detection latency
   (crash -> declared dead) and MTTR (crash -> app running again).  The
   same numbers are dumped to BENCH_availability.json for CI trending. *)

module Faultsim = Zapc_faultsim.Faultsim
module Periodic = Zapc.Periodic
module Supervisor = Zapc.Supervisor
module Storage = Zapc.Storage

let avail_params =
  { Params.default with
    Params.phase_timeout = Simtime.ms 400;
    heartbeat_period = Simtime.ms 20;
    heartbeat_misses = 3;
    recover_backoff = Simtime.ms 40;
    recover_backoff_max = Simtime.ms 400;
    recover_retries = 5;
    ckpt_fixed = Simtime.ms 20;
    restore_fixed = Simtime.ms 60;
    cost_jitter = 0.2 }

type avail_sample = {
  av_seed : int;
  av_detect_ms : float;  (* crash -> supervisor declares the node dead *)
  av_mttr_ms : float;  (* crash -> recovery checkpoint restored, app running *)
  av_attempts : int;
  av_repair_ms : float;  (* declaration -> recovered (sup.mttr_ms histogram) *)
}

(* One seeded crash-recovery run (mirrors the chaos harness's acceptance
   scenario): BT/NAS on two of four nodes, periodic service at 50 ms,
   supervisor watching; node 1 loses power after two good epochs.
   Detection latency, MTTR and the attempt count are read back from the
   cluster's metrics registry (sup.* instruments) rather than re-derived
   from raw trace events. *)
let avail_run seed =
  Zapc_apps.Registry.register_all ();
  let cluster = Cluster.make ~seed ~params:avail_params ~node_count:4 () in
  let fs = Faultsim.create cluster in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:
        (Zapc_apps.Bt_nas.params_to_value
           { Zapc_apps.Bt_nas.default_params with
                   g = 96; iters = 400; ns_per_cell = 2_700 })
      ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  let svc =
    Periodic.start cluster ~pods:app.Launch.pods ~prefix:"avail"
      ~period:(Simtime.ms 50) ~keep:2 ()
  in
  let sup = Supervisor.start ~trace:(Faultsim.trace fs) cluster svc in
  Cluster.run_until cluster ~timeout:(Simtime.sec 30.0) (fun () ->
      Periodic.last_good svc >= 2 && not (Manager.busy (Cluster.manager cluster)));
  let crash_time = Cluster.now cluster in
  Faultsim.install fs
    { Faultsim.fault = Faultsim.Crash_node { node = 1 }; trigger = Faultsim.Now };
  Cluster.run_until cluster ~timeout:(Simtime.sec 60.0) (fun () ->
      Supervisor.recoveries sup >= 1 || Supervisor.gave_up sup);
  let reg = Cluster.metrics cluster in
  let sample =
    if Zapc_obs.Metrics.counter reg "sup.recoveries" >= 1 then begin
      let crash_ms = Simtime.to_ms crash_time in
      Some
        { av_seed = seed;
          av_detect_ms = Zapc_obs.Metrics.gauge reg "sup.last_detect_ms" -. crash_ms;
          av_mttr_ms =
            Zapc_obs.Metrics.gauge reg "sup.last_recovered_ms" -. crash_ms;
          av_attempts = Zapc_obs.Metrics.counter reg "sup.attempts";
          av_repair_ms = Zapc_obs.Metrics.p50 reg "sup.mttr_ms" }
    end
    else None
  in
  Supervisor.stop sup;
  Periodic.stop svc;
  sample

let avail_json path samples detect mttr =
  let oc = open_out path in
  let field s =
    Printf.sprintf
      "    {\"seed\": %d, \"detect_ms\": %.3f, \"mttr_ms\": %.3f, \
       \"attempts\": %d, \"repair_ms\": %.3f}"
      s.av_seed s.av_detect_ms s.av_mttr_ms s.av_attempts s.av_repair_ms
  in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"availability\",\n\
    \  \"scenario\": \"crash one of two BT/NAS nodes mid-run\",\n\
    \  \"source\": \"sup.* metrics registry (see doc/OBSERVABILITY.md)\",\n\
    \  \"detect_ms\": {\"mean\": %.3f, \"stddev\": %.3f, \"max\": %.3f},\n\
    \  \"mttr_ms\": {\"mean\": %.3f, \"stddev\": %.3f, \"max\": %.3f},\n\
    \  \"runs\": [\n%s\n  ]\n}\n"
    (Stats.mean detect) (Stats.stddev detect) (Stats.max detect)
    (Stats.mean mttr) (Stats.stddev mttr) (Stats.max mttr)
    (String.concat ",\n" (List.map field samples));
  close_out oc

let availability () =
  section
    "AVAIL  Self-healing supervisor: heartbeat detection latency and MTTR\n\
    \       (node crash mid-run; recovery from the last good periodic epoch\n\
    \       on the surviving nodes, zero manual intervention)";
  row "%6s %14s %12s %12s %10s\n" "seed" "detect (ms)" "mttr (ms)" "repair (ms)"
    "attempts";
  let seeds = List.init 8 (fun i -> 42 + (i * 1000)) in
  let samples = List.filter_map avail_run seeds in
  let detect = Stats.create () and mttr = Stats.create () in
  List.iter
    (fun s ->
      Stats.add detect s.av_detect_ms;
      Stats.add mttr s.av_mttr_ms;
      row "%6d %14.1f %12.1f %12.1f %10d\n" s.av_seed s.av_detect_ms s.av_mttr_ms
        s.av_repair_ms s.av_attempts)
    samples;
  if List.length samples < List.length seeds then
    row "(!) %d/%d runs did not recover\n"
      (List.length seeds - List.length samples)
      (List.length seeds);
  row "%6s %14.1f %12.1f\n" "mean" (Stats.mean detect) (Stats.mean mttr);
  let path = "BENCH_availability.json" in
  avail_json path samples detect mttr;
  Printf.printf "\nwrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Incremental (delta) checkpointing: full vs delta epoch cost         *)
(* ------------------------------------------------------------------ *)

(* Not in the paper (ZapC always writes full images); this measures the
   delta-checkpoint extension: periodic epochs where each Agent writes only
   the dirty memory regions and changed per-process state against its last
   stored image, with a forced full every (max_delta_chain + 1)-th epoch.
   Two workloads bracket the win: BT/NAS allocates its working set once at
   boot (deltas are nearly free), while the pipeline pod's state churns
   every epoch.  The run ends by restarting the app from the newest epoch
   — in incremental mode that materializes the whole delta chain, so a
   passing restart attests that chain resolution reproduces a loadable
   full image.  Dumped to BENCH_incremental.json for CI trending. *)

type inc_epoch = {
  ie_epoch : int;
  ie_written : int;  (* bytes actually stored this epoch, all pods *)
  ie_full_cost : int;  (* what full images at the same instant would cost *)
  ie_deltas : int;  (* pods written as deltas (0 on a full epoch) *)
  ie_dur_ms : float;
}

type inc_run_result = {
  ir_epochs : inc_epoch list;  (* oldest first *)
  ir_restart_ok : bool;
  ir_restart_ms : float;
  ir_chained : bool;  (* the restarted epoch was a delta over a prior one *)
}

let inc_run ~incremental ~label ~spawn ~target_nodes ~epochs () =
  Zapc_apps.Registry.register_all ();
  let cluster = Cluster.make ~seed:42 ~params:Params.default ~node_count:4 () in
  let pods, procs = spawn cluster in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  let prefix = label ^ if incremental then "-inc" else "-full" in
  let svc =
    Periodic.start ~incremental cluster ~pods ~prefix ~period:(Simtime.ms 50)
      ~keep:(epochs + 1) ()
  in
  let eps = ref [] in
  Periodic.set_on_epoch svc (fun e r ->
      if r.Manager.r_ok then begin
        let sum f = List.fold_left (fun a (_, st) -> a + f st) 0 r.Manager.r_stats in
        eps :=
          { ie_epoch = e;
            ie_written = sum (fun st -> st.Protocol.st_image_bytes);
            ie_full_cost =
              sum (fun st ->
                  if st.Protocol.st_full_bytes > 0 then st.Protocol.st_full_bytes
                  else st.Protocol.st_image_bytes);
            ie_deltas =
              List.length
                (List.filter (fun (_, st) -> st.Protocol.st_full_bytes > 0)
                   r.Manager.r_stats);
            ie_dur_ms = Simtime.to_ms r.Manager.r_duration }
          :: !eps
      end);
  Cluster.run_until cluster ~timeout:(Simtime.sec 120.0) (fun () ->
      List.length !eps >= epochs || Cluster.procs_exited procs);
  let good = Periodic.last_good svc in
  let pod_ids = Periodic.pod_ids svc in
  Periodic.stop svc;
  (* drain the in-flight epoch (if any) before restarting *)
  Cluster.run cluster ~until:(Simtime.add (Cluster.now cluster) (Simtime.sec 2.0)) ();
  let epoch_prefix = Printf.sprintf "%s.e%d" prefix good in
  let chained =
    List.exists
      (fun pod_id ->
        Storage.base_key (Cluster.storage cluster)
          (Printf.sprintf "%s.pod%d" epoch_prefix pod_id)
        <> None)
      pod_ids
  in
  let r =
    Cluster.restart_app cluster ~pod_ids ~target_nodes ~key_prefix:epoch_prefix
  in
  { ir_epochs = List.rev !eps;
    ir_restart_ok = r.Manager.r_ok;
    ir_restart_ms = Simtime.to_ms r.Manager.r_duration;
    ir_chained = chained }

(* written/full-cost over the delta epochs only: the per-epoch saving *)
let delta_ratio run =
  let ds = List.filter (fun e -> e.ie_deltas > 0) run.ir_epochs in
  let w = List.fold_left (fun a e -> a + e.ie_written) 0 ds in
  let f = List.fold_left (fun a e -> a + e.ie_full_cost) 0 ds in
  if f = 0 then 1.0 else float_of_int w /. float_of_int f

(* BT/NAS goes through Launch (MPI ranks, one pod per node); the pipeline
   is a single multi-process pod spawned directly — its driver parses raw
   params, not the MPI argument envelope. *)
let inc_workloads =
  [ ( "bt_nas",
      (fun cluster ->
        let app =
          Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
            ~app_args:
              (Zapc_apps.Bt_nas.params_to_value
                 { Zapc_apps.Bt_nas.default_params with
                   g = 96; iters = 400; ns_per_cell = 2_700 })
            ()
        in
        (app.Launch.pods, app.Launch.ranks)),
      [ 2; 3 ] );
    ( "pipeline",
      (fun cluster ->
        let pod = Cluster.create_pod cluster ~node_idx:0 ~name:"pipeline" in
        Cluster.link_pods [ pod ];
        let driver =
          Pod.spawn pod ~program:"pipeline"
            ~args:
              (Zapc_apps.Pipeline.params_to_value
                 { Zapc_apps.Pipeline.default_params with lines = 40_000 })
        in
        ([ pod ], [ driver ])),
      [ 1 ] ) ]

let inc_json path results =
  let oc = open_out path in
  let epoch_row e =
    Printf.sprintf
      "        {\"epoch\": %d, \"written\": %d, \"full_cost\": %d, \
       \"deltas\": %d, \"dur_ms\": %.3f}"
      e.ie_epoch e.ie_written e.ie_full_cost e.ie_deltas e.ie_dur_ms
  in
  let mode_obj run =
    Printf.sprintf
      "{\n\
      \      \"epochs\": [\n%s\n      ],\n\
      \      \"delta_ratio\": %.4f,\n\
      \      \"restart_ok\": %b,\n\
      \      \"restart_chained\": %b,\n\
      \      \"restart_ms\": %.3f\n\
      \    }"
      (String.concat ",\n" (List.map epoch_row run.ir_epochs))
      (delta_ratio run) run.ir_restart_ok run.ir_chained run.ir_restart_ms
  in
  let wl (label, full, inc) =
    Printf.sprintf
      "    {\"app\": \"%s\",\n\
      \     \"full\": %s,\n\
      \     \"incremental\": %s}"
      label (mode_obj full) (mode_obj inc)
  in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"incremental\",\n\
    \  \"scenario\": \"periodic epochs, full vs delta images; restart from \
     the newest (chained) epoch\",\n\
    \  \"workloads\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map wl results));
  close_out oc

let incremental () =
  section
    "INCR   Incremental (delta) checkpoints: per-epoch bytes vs full images\n\
    \       (dirty-region tracking; forced full every max_delta_chain+1\n\
    \       epochs; restart materializes the delta chain)";
  row "%-12s %-12s %8s %14s %14s %10s %12s\n" "app" "mode" "epochs" "written/ep"
    "full-cost/ep" "ratio" "restart";
  let epochs = 8 in
  let results =
    List.map
      (fun (label, spawn, target_nodes) ->
        let run incr =
          inc_run ~incremental:incr ~label ~spawn ~target_nodes ~epochs ()
        in
        let full = run false and inc = run true in
        let report mode r =
          let n = max 1 (List.length r.ir_epochs) in
          let avg f = List.fold_left (fun a e -> a + f e) 0 r.ir_epochs / n in
          row "%-12s %-12s %8d %14d %14d %10.3f %9.1fms\n" label mode
            (List.length r.ir_epochs)
            (avg (fun e -> e.ie_written))
            (avg (fun e -> e.ie_full_cost))
            (delta_ratio r) r.ir_restart_ms;
          if not r.ir_restart_ok then
            row "(!) %s/%s: restart from the newest epoch FAILED\n" label mode
        in
        report "full" full;
        report "incremental" inc;
        if not inc.ir_chained then
          row "(!) %s: newest incremental epoch was not a delta\n" label;
        (label, full, inc))
      inc_workloads
  in
  (match List.assoc_opt "bt_nas" (List.map (fun (l, _, i) -> (l, i)) results) with
   | Some inc when delta_ratio inc > 0.5 ->
     row "(!) bt_nas delta epochs cost %.0f%%%% of full images (expected <= 50%%%%)\n"
       (delta_ratio inc *. 100.0)
   | _ -> ());
  (* one traced delta checkpoint for the @incr alias: obs_check validates the
     Figure-2 overlap holds on the delta path too, plus the metrics dump *)
  let cluster = Cluster.make ~seed:42 ~params:Params.default ~node_count:4 () in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:
        (Zapc_apps.Bt_nas.params_to_value
           { Zapc_apps.Bt_nas.default_params with
                   g = 96; iters = 400; ns_per_cell = 2_700 })
      ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  let base = Cluster.snapshot ~incremental:true cluster ~pods:app.Launch.pods
      ~key_prefix:"inc-trace-base" in
  if not base.Manager.r_ok then
    failwith ("incremental: base checkpoint failed: " ^ base.Manager.r_detail);
  Cluster.run cluster ~until:(Simtime.add (Cluster.now cluster) (Simtime.ms 20)) ();
  let tr = Cluster.enable_trace cluster in
  let r = Cluster.snapshot ~incremental:true cluster ~pods:app.Launch.pods
      ~key_prefix:"inc-trace" in
  if not r.Manager.r_ok then
    failwith ("incremental: traced delta checkpoint failed: " ^ r.Manager.r_detail);
  Zapc.Trace.dump_chrome tr "BENCH_incremental_trace.json";
  Zapc_obs.Metrics.dump (Cluster.metrics cluster) "BENCH_incremental_metrics.json";
  let path = "BENCH_incremental.json" in
  inc_json path results;
  Printf.printf
    "\nwrote %s BENCH_incremental_trace.json BENCH_incremental_metrics.json\n"
    path

(* ------------------------------------------------------------------ *)
(* Quick smoke (also the @obs alias input)                             *)
(* ------------------------------------------------------------------ *)

(* One app, one size, one checkpoint series — plus a traced checkpoint whose
   Chrome trace and metrics snapshot are validated by bench/obs_check.ml. *)
let quick () =
  section "QUICK  smoke run: BT/NAS on 4 nodes";
  let base = completion_run Bt 4 Base in
  let zapc = completion_run Bt 4 Zapc_mode in
  Printf.printf "completion base=%.2fs zapc=%.2fs\n" base zapc;
  let s = checkpoint_run ~count:4 Bt 4 in
  Printf.printf "ckpt avg=%.1fms image=%.1fMB restart=%.1fms\n"
    (Stats.mean s.ckpt_times) (Stats.mean s.max_image) s.restart_time;
  let env = launch_app Bt 4 in
  let tr = Cluster.enable_trace env.cluster in
  Cluster.run env.cluster ~until:(Simtime.sec 2.0) ();
  let r =
    Cluster.checkpoint_sync env.cluster
      ~items:(items_for env.cluster env.app ~prefix:"quick")
      ~resume:true
  in
  if not r.Manager.r_ok then failwith ("quick: traced checkpoint failed: " ^ r.Manager.r_detail);
  Zapc.Trace.dump_chrome tr "BENCH_quick_trace.json";
  Zapc_obs.Metrics.dump (Cluster.metrics env.cluster) "BENCH_quick_metrics.json";
  Printf.printf "wrote BENCH_quick_trace.json BENCH_quick_metrics.json\n"

(* ------------------------------------------------------------------ *)
(* Engine profiler: per-callsite event attribution (@prof alias)       *)
(* ------------------------------------------------------------------ *)

(* Not a paper experiment: runs a checkpointed BT/NAS execution with the
   engine profiler on ([Params.profile_engine]) and attributes every fired
   engine event to a labeled callsite.  Coverage — events under a real
   label over all events — must be >= 90%: an unlabeled hot path would
   silently escape the profile.  Event counts are deterministic for the
   seeded run and regression-gated by obs_diff; host seconds are
   wall-clock and excluded from the gate (obs_diff skips "host" keys).
   The critical-path block repeats the mgr.critpath analysis of the traced
   checkpoint.  Dumped to BENCH_profile.json. *)

let profile () =
  section
    "PROF   Engine profiler: per-callsite event counts (profile_engine on)\n\
    \       coverage = events attributed to labeled callsites, >= 90% enforced";
  Zapc_apps.Registry.register_all ();
  let params = { Params.default with Params.profile_engine = true } in
  let cluster = Cluster.make ~seed:42 ~params ~node_count:4 () in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1; 2; 3 ]
      ~app_args:
        (Zapc_apps.Bt_nas.params_to_value
           { Zapc_apps.Bt_nas.default_params with
             g = 96; iters = 300; ns_per_cell = 2_700 })
      ()
  in
  ignore (Cluster.enable_trace cluster);
  Cluster.run cluster ~until:(Simtime.ms 20) ();
  let r =
    Cluster.checkpoint_sync cluster
      ~items:(items_for cluster app ~prefix:"prof")
      ~resume:true
  in
  if not r.Manager.r_ok then
    failwith ("profile: checkpoint failed: " ^ r.Manager.r_detail);
  ignore (Launch.wait_done cluster app);
  let prof = Engine.profile (Cluster.engine cluster) in
  let total = List.fold_left (fun a (_, n, _) -> a + n) 0 prof in
  let labeled =
    List.fold_left
      (fun a (l, n, _) -> if String.equal l "unlabeled" then a else a + n)
      0 prof
  in
  let coverage =
    if total = 0 then 0.0 else float_of_int labeled /. float_of_int total
  in
  row "%-16s %12s %12s\n" "label" "events" "host (ms)";
  List.iter (fun (l, n, s) -> row "%-16s %12d %12.2f\n" l n (s *. 1000.0)) prof;
  row "%-16s %12d\n" "total" total;
  row "coverage: %.1f%% of %d events attributed to labeled callsites\n"
    (coverage *. 100.0) total;
  if coverage < 0.9 then
    failwith
      (Printf.sprintf
         "profile: only %.1f%% of engine events attributed to labeled \
          callsites (expected >= 90%%)"
         (coverage *. 100.0));
  let critpath =
    match Manager.last_critpath (Cluster.manager cluster) with
    | None ->
      failwith "profile: no critical-path report from the traced checkpoint"
    | Some (op, rep) ->
      let module Critpath = Zapc_obs.Critpath in
      Printf.sprintf
        "{\"op\": \"%s\", \"total_ms\": %.3f, \"dominant\": \"%s\",\n\
        \    \"phases\": [\n%s\n    ]}"
        op
        (Simtime.to_ms rep.Critpath.cp_total)
        rep.Critpath.cp_dominant
        (String.concat ",\n"
           (List.map
              (fun (name, d) ->
                Printf.sprintf "      {\"phase\": \"%s\", \"ms\": %.3f}" name
                  (Simtime.to_ms d))
              rep.Critpath.cp_phases))
  in
  let path = "BENCH_profile.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"profile\",\n\
    \  \"scenario\": \"BT/NAS on 4 nodes, one traced coordinated checkpoint, \
     engine profiler on\",\n\
    \  \"total_events\": %d,\n\
    \  \"labeled_events\": %d,\n\
    \  \"coverage\": %.4f,\n\
    \  \"labels\": [\n%s\n  ],\n\
    \  \"critpath\": %s\n\
     }\n"
    total labeled coverage
    (String.concat ",\n"
       (List.map
          (fun (l, n, s) ->
            Printf.sprintf
              "    {\"label\": \"%s\", \"count\": %d, \"host_s\": %.6f}" l n s)
          prof))
    critpath;
  close_out oc;
  Printf.printf "\nwrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Live migration: pre-copy vs stop-and-copy blackout                  *)
(* ------------------------------------------------------------------ *)

(* Not in the paper (ZapC migrates by full checkpoint-restart); this
   measures the iterative pre-copy extension: the full image travels while
   the pod keeps running, rounds re-ship only what the pod dirtied under
   the previous copy, and the blackout shrinks to the final residue plus
   the fixed stop/resume costs.  A synthetic pod with a steady,
   controllable dirty rate sweeps the regime: at low rates pre-copy must
   cut the blackout below 20% of stop-and-copy (that bound is enforced),
   and past the fabric bandwidth the rounds cannot converge — the cap
   forces the stop and the blackout advantage evaporates, which is the
   expected crossover, not a failure.  Dumped to BENCH_migration.json. *)

module Mighog = struct
  module Program = Zapc_simos.Program
  module Syscall = Zapc_simos.Syscall

  (* allocate [regions] x [size] bytes, log ready, then rewrite [stride]
     regions (rotating) every [period_us] forever; stride 0 just sleeps *)
  type state = {
    regions : int;
    size : int;
    stride : int;
    period_us : int;
    mutable ph : int;
    mutable cursor : int;
    mutable burst : int;  (* 0 = sleep next; else touches left this period *)
  }

  let name = "bench.mighog"

  let start args =
    { regions = Value.to_int (Value.field "regions" args);
      size = Value.to_int (Value.field "size" args);
      stride = Value.to_int (Value.field "stride" args);
      period_us = Value.to_int (Value.field "period_us" args);
      ph = 0; cursor = 0; burst = 0 }

  let region i = Printf.sprintf "mig.%d" i

  let step s (_ : Syscall.outcome) =
    if s.ph < s.regions then begin
      let i = s.ph in
      s.ph <- s.ph + 1;
      (s, Program.Sys (Syscall.Mem_alloc (region i, s.size)))
    end
    else if s.ph = s.regions then begin
      s.ph <- s.ph + 1;
      (s, Program.Sys (Syscall.Log "mighog ready"))
    end
    else if s.stride = 0 || s.burst = 0 then begin
      s.burst <- s.stride;
      (s, Program.Sys (Syscall.Nanosleep
                         (if s.stride = 0 then Simtime.sec 50.0
                          else Simtime.us s.period_us)))
    end
    else begin
      s.burst <- s.burst - 1;
      let i = s.cursor in
      s.cursor <- (s.cursor + 1) mod s.regions;
      (* re-alloc at the same size: marks the region dirty *)
      (s, Program.Sys (Syscall.Mem_alloc (region i, s.size)))
    end

  let to_value s =
    Value.assoc
      [ ("regions", Value.int s.regions); ("size", Value.int s.size);
        ("stride", Value.int s.stride); ("period_us", Value.int s.period_us);
        ("ph", Value.int s.ph); ("cursor", Value.int s.cursor);
        ("burst", Value.int s.burst) ]

  let of_value v =
    { regions = Value.to_int (Value.field "regions" v);
      size = Value.to_int (Value.field "size" v);
      stride = Value.to_int (Value.field "stride" v);
      period_us = Value.to_int (Value.field "period_us" v);
      ph = Value.to_int (Value.field "ph" v);
      cursor = Value.to_int (Value.field "cursor" v);
      burst = Value.to_int (Value.field "burst" v) }
end

(* 128 x 512 KB = 64 MB working set: transfer and restore dominate the
   fixed costs, which is the regime where pre-copy pays *)
let mig_regions = 128
let mig_region_size = 524_288

type mig_sample = {
  ms_blackout_ms : float;
  ms_duration_ms : float;
  ms_rounds : int;
  ms_precopy_bytes : int;
  ms_forced : bool;
}

(* One migration of the hog pod at the given dirty rate; [trace] wires the
   run into the Chrome-trace artifact for the @mig observability check. *)
let mig_run ?(trace = false) ~stride ~period_us ~max_rounds () =
  let module Metrics = Zapc_obs.Metrics in
  Zapc_simos.Program.register_if_absent (module Mighog : Zapc_simos.Program.S);
  let cluster = Cluster.make ~seed:42 ~params:Params.default ~node_count:2 () in
  let ready = ref false in
  Kernel.set_logger (Cluster.node cluster 0).Cluster.n_kernel (fun _ _ m ->
      if m = "mighog ready" then ready := true);
  let pod = Cluster.create_pod cluster ~node_idx:0 ~name:"mighog" in
  Cluster.link_pods [ pod ];
  let _proc =
    Pod.spawn pod ~program:"bench.mighog"
      ~args:
        (Value.assoc
           [ ("regions", Value.int mig_regions);
             ("size", Value.int mig_region_size);
             ("stride", Value.int stride); ("period_us", Value.int period_us) ])
  in
  Cluster.run_until cluster ~timeout:(Simtime.sec 5.0) (fun () -> !ready);
  (* let the dirtying loop reach steady state before the first capture *)
  Cluster.run cluster ~until:(Simtime.add (Cluster.now cluster) (Simtime.ms 20)) ();
  let tr = if trace then Some (Cluster.enable_trace cluster) else None in
  let r = Cluster.migrate_sync cluster ~pod ~dest_node:1 ~max_rounds in
  if not r.Manager.r_ok then
    failwith ("migration: migrate failed: " ^ r.Manager.r_detail);
  let m = Cluster.metrics cluster in
  let sample =
    { ms_blackout_ms = Metrics.hist_sum m "mig.blackout_ms";
      ms_duration_ms = Metrics.hist_sum m "mgr.mig.duration_ms";
      ms_rounds = int_of_float (Metrics.hist_sum m "mig.rounds");
      ms_precopy_bytes = int_of_float (Metrics.hist_sum m "mig.precopy_bytes");
      ms_forced = Metrics.counter m "mig.forced_stops" > 0 }
  in
  (match tr with
   | Some tr ->
     Zapc.Trace.dump_chrome tr "BENCH_migration_trace.json";
     Metrics.dump m "BENCH_migration_metrics.json"
   | None -> ());
  sample

(* (label, low_rate, stride, period_us): dirty rate = stride*size/period *)
let mig_rates =
  [ ("quiescent", true, 0, 0);
    ("10 MB/s", true, 1, 50_000);
    ("50 MB/s", false, 1, 10_000);
    ("200 MB/s", false, 4, 10_000);
    ("800 MB/s", false, 16, 10_000) ]

let mig_json path rows =
  let oc = open_out path in
  let sample_obj s =
    Printf.sprintf
      "{\"blackout_ms\": %.3f, \"duration_ms\": %.3f, \"rounds\": %d, \
       \"precopy_bytes\": %d, \"forced\": %b}"
      s.ms_blackout_ms s.ms_duration_ms s.ms_rounds s.ms_precopy_bytes
      s.ms_forced
  in
  let row (label, stride, period_us, sc, pc) =
    Printf.sprintf
      "    {\"rate\": \"%s\", \"stride\": %d, \"period_us\": %d,\n\
      \     \"stop_and_copy\": %s,\n\
      \     \"pre_copy\": %s,\n\
      \     \"blackout_ratio\": %.4f}"
      label stride period_us (sample_obj sc) (sample_obj pc)
      (if sc.ms_blackout_ms > 0.0 then pc.ms_blackout_ms /. sc.ms_blackout_ms
       else 0.0)
  in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"migration\",\n\
    \  \"scenario\": \"64 MB pod, dirty-rate sweep; iterative pre-copy \
     (cap 8, threshold 5%%) vs stop-and-copy blackout\",\n\
    \  \"rates\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map row rows));
  close_out oc

let migration () =
  section
    "MIG    Live migration: blackout vs dirty rate, 64 MB pod\n\
    \       (iterative pre-copy, cap 8 rounds, 5% residue threshold,\n\
    \       vs the same pod stop-and-copied)";
  row "%-12s %14s %14s %8s %8s %12s %8s\n" "dirty rate" "SC blackout"
    "PC blackout" "ratio" "rounds" "precopy MB" "forced";
  let rows =
    List.map
      (fun (label, low, stride, period_us) ->
        let sc = mig_run ~stride ~period_us ~max_rounds:0 () in
        let pc = mig_run ~stride ~period_us ~max_rounds:8 () in
        let ratio =
          if sc.ms_blackout_ms > 0.0 then pc.ms_blackout_ms /. sc.ms_blackout_ms
          else 0.0
        in
        row "%-12s %12.1fms %12.1fms %8.3f %8d %12.1f %8s\n" label
          sc.ms_blackout_ms pc.ms_blackout_ms ratio pc.ms_rounds
          (float_of_int pc.ms_precopy_bytes /. 1048576.0)
          (if pc.ms_forced then "yes" else "no");
        (* the headline claim, enforced: at dirty rates the link can absorb,
           pre-copy blacks out for less than 20% of a stop-and-copy *)
        if low && ratio >= 0.2 then
          failwith
            (Printf.sprintf
               "migration: pre-copy blackout %.1fms is %.0f%% of \
                stop-and-copy %.1fms at %s (expected < 20%%)"
               pc.ms_blackout_ms (ratio *. 100.0) sc.ms_blackout_ms label);
        (label, stride, period_us, sc, pc))
      mig_rates
  in
  (* one traced pre-copy migration for the @mig alias: obs_check validates
     the migrate span and the blackout nested strictly inside it *)
  ignore (mig_run ~trace:true ~stride:1 ~period_us:50_000 ~max_rounds:8 ());
  let path = "BENCH_migration.json" in
  mig_json path rows;
  Printf.printf
    "\nwrote %s BENCH_migration_trace.json BENCH_migration_metrics.json\n" path

(* ------------------------------------------------------------------ *)
(* Served traffic: client-side SLO under the full robustness matrix    *)
(* ------------------------------------------------------------------ *)

module Serve = Zapc_apps.Serve
module Obs = Zapc_obs.Metrics

(* One seeded run of the sharded key-value service under 1000 concurrent
   client connections that sweeps the whole matrix while traffic flows: a
   steady-state window, periodic coordinated checkpoints, a live pre-copy
   migration of the loaded shard-0 pod, and a node crash healed by the
   supervisor from the last epoch.  The client-side latency samples are cut
   into per-phase windows and the p99s become the SLO table of
   BENCH_serve.json; the exactly-once contract (issued == completed, zero
   duplicates) is enforced, not just reported. *)

let serve_cfg =
  { Serve.default_cfg with
    n_conns = 1000;
    reqs_per_conn = 12;
    period = Simtime.ms 100;
    req_timeout = Simtime.ms 150 }

type serve_result = {
  sv_stats : Serve.stats;
  sv_expected : int;
  sv_windows : Serve.window_report list;
  sv_detect_ms : float;
  sv_mttr_ms : float;
}

let serve_run () =
  let t = Serve.setup ~nodes:5 ~seed:42 ~cfg:serve_cfg () in
  let cluster = t.Serve.cluster in
  let tr = Cluster.enable_trace cluster in
  (* phase 1 — steady state, no control plane: 100..300 ms *)
  Cluster.run cluster ~until:(Simtime.ms 300) ();
  (* phase 2 — periodic coordinated checkpoints: 300..550 ms *)
  let per =
    Periodic.start cluster ~pods:t.Serve.servers ~prefix:"slo"
      ~period:(Simtime.ms 80) ~keep:2 ()
  in
  (* share the span trace: Faultsim.create with no ~trace would install a
     fresh one and orphan [tr] *)
  let fs = Faultsim.create ~trace:tr cluster in
  let sup = Supervisor.start ~trace:(Faultsim.trace fs) cluster per in
  Cluster.run cluster ~until:(Simtime.ms 550) ();
  (* phase 3 — live pre-copy migration of the loaded shard-0 pod; let any
     in-flight epoch finish first (the Manager runs one op at a time) *)
  Cluster.run_until cluster ~timeout:(Simtime.sec 10.0) (fun () ->
      not (Manager.busy (Cluster.manager cluster)));
  let p0 = List.hd t.Serve.servers in
  let m = Cluster.migrate_sync cluster ~pod:p0 ~dest_node:3 in
  if not m.Manager.r_ok then failwith ("serve: migration failed: " ^ m.Manager.r_detail);
  Cluster.run cluster ~until:(Simtime.ms 750) ();
  (* phase 4 — crash the node hosting shard 1; the supervisor detects the
     missed heartbeats and restores both shards from the last good epoch *)
  if Periodic.last_good per < 1 then failwith "serve: no good epoch before the crash";
  let crash_node =
    match Pod.find (List.nth t.Serve.servers 1).Pod.pod_id with
    | Some p ->
      (match Zapc_simnet.Fabric.node_of_ip (Cluster.fabric cluster) p.Pod.rip with
       | Some n -> n
       | None -> failwith "serve: shard 1 has no node")
    | None -> failwith "serve: shard 1 pod vanished before the crash"
  in
  let crash_time = Cluster.now cluster in
  Faultsim.install fs
    { Faultsim.fault = Faultsim.Crash_node { node = crash_node };
      trigger = Faultsim.Now };
  Cluster.run_until cluster ~timeout:(Simtime.sec 60.0) (fun () ->
      Supervisor.recoveries sup >= 1 || Supervisor.gave_up sup);
  if Supervisor.gave_up sup then failwith "serve: supervisor gave up";
  Serve.wait_done ~timeout:(Simtime.sec 300.0) t;
  Supervisor.stop sup;
  Periodic.stop per;
  (* drain any epoch still in flight before reading quiescent state *)
  Cluster.run cluster ~until:(Simtime.add (Cluster.now cluster) (Simtime.ms 300)) ();
  let reg = Cluster.metrics cluster in
  let s = Serve.feed_metrics t in
  let expected = Serve.total_expected t in
  (* the exactly-once contract is the experiment's precondition: a lost or
     doubled response makes the latency table meaningless *)
  if s.Serve.st_issued <> expected || s.st_completed <> expected then
    failwith
      (Printf.sprintf "serve: issued %d completed %d, expected %d" s.st_issued
         s.st_completed expected);
  if s.st_dups <> 0 then
    failwith (Printf.sprintf "serve: %d duplicate responses" s.st_dups);
  if s.st_inflight <> 0 then
    failwith (Printf.sprintf "serve: %d requests still in flight" s.st_inflight);
  for shard = 0 to serve_cfg.nshards - 1 do
    if Serve.digest t ~shard = 0 then
      failwith (Printf.sprintf "serve: shard %d digest is zero" shard)
  done;
  let nf = Zapc_simnet.Fabric.netfilter (Cluster.fabric cluster) in
  if Zapc_simnet.Netfilter.blocked_count nf <> 0 then
    failwith
      (Printf.sprintf "serve: %d leaked netfilter rule(s)"
         (Zapc_simnet.Netfilter.blocked_count nf));
  let crash_ms = Simtime.to_ms crash_time in
  let detect_ms = Obs.gauge reg "sup.last_detect_ms" -. crash_ms in
  let mttr_ms = Obs.gauge reg "sup.last_recovered_ms" -. crash_ms in
  let crash_end = Simtime.ms (int_of_float (crash_ms +. mttr_ms) + 200) in
  let windows =
    [ { Serve.w_name = "steady"; w_from = Simtime.ms 100; w_until = Simtime.ms 300 };
      { Serve.w_name = "checkpoint"; w_from = Simtime.ms 300; w_until = Simtime.ms 550 };
      { Serve.w_name = "migration"; w_from = Simtime.ms 550; w_until = Simtime.ms 750 };
      { Serve.w_name = "crash"; w_from = crash_time; w_until = crash_end } ]
  in
  let reports = List.map (Serve.window_report s) windows in
  Zapc.Trace.dump_chrome tr "BENCH_serve_trace.json";
  Obs.dump reg "BENCH_serve_metrics.json";
  { sv_stats = s; sv_expected = expected; sv_windows = reports;
    sv_detect_ms = detect_ms; sv_mttr_ms = mttr_ms }

(* Mass-socket restore scaling (the hashtable-index claim): suspend the
   service mid-traffic with every connection established and time the
   host-side restart at two population sizes.  With the per-port and
   per-4-tuple indexes the restore is near-linear in the socket count; the
   old per-socket linear scans made it quadratic.  4x the connections must
   cost clearly less than the quadratic 16x. *)

type mass_sample = { mc_conns : int; mc_sockets : int; mc_host_s : float }

let serve_mass_restore n_conns =
  let cfg =
    { serve_cfg with n_conns; reqs_per_conn = 40; period = Simtime.ms 40 }
  in
  let t = Serve.setup ~nodes:4 ~seed:23 ~cfg () in
  let cluster = t.Serve.cluster in
  (* every connection established and mid-flight *)
  Cluster.run cluster ~until:(Simtime.ms 250) ();
  let items = Serve.ckpt_items t ~prefix:"mass" in
  let r = Cluster.checkpoint_sync cluster ~items ~resume:false in
  if not r.Manager.r_ok then failwith ("serve: mass checkpoint failed: " ^ r.r_detail);
  let sockets =
    List.fold_left
      (fun acc (_, (st : Protocol.agent_stats)) -> acc + st.Protocol.st_sockets)
      0 r.Manager.r_stats
  in
  let t0 = Sys.time () in
  let rr =
    Cluster.restart_app cluster
      ~pod_ids:(List.map (fun (p : Pod.t) -> p.Pod.pod_id) t.Serve.servers)
      ~target_nodes:[ 2; 3 ] ~key_prefix:"mass"
  in
  let host = Sys.time () -. t0 in
  if not rr.Manager.r_ok then failwith ("serve: mass restart failed: " ^ rr.r_detail);
  { mc_conns = n_conns; mc_sockets = sockets; mc_host_s = host }

let serve_json path r (small : mass_sample) (big : mass_sample) ratio =
  let oc = open_out path in
  let s = r.sv_stats in
  let w (wr : Serve.window_report) =
    Printf.sprintf
      "    {\"name\": \"%s\", \"count\": %d, \"p50_ms\": %.3f, \"p90_ms\": \
       %.3f, \"p99_ms\": %.3f}"
      wr.Serve.wr_name wr.wr_count wr.wr_p50_ms wr.wr_p90_ms wr.wr_p99_ms
  in
  let mass m =
    Printf.sprintf "    {\"conns\": %d, \"sockets\": %d, \"restore_host_s\": %.4f}"
      m.mc_conns m.mc_sockets m.mc_host_s
  in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"serve\",\n\
    \  \"scenario\": \"sharded kv service, 1000 client connections; steady \
     state, periodic checkpoints, live migration, node crash + supervised \
     recovery\",\n\
    \  \"exactly_once\": {\"expected\": %d, \"issued\": %d, \"completed\": \
     %d, \"duplicates\": %d, \"timeouts\": %d, \"retries\": %d, \
     \"redirects\": %d, \"reconnects\": %d, \"inflight\": %d},\n\
    \  \"windows\": [\n%s\n  ],\n\
    \  \"crash\": {\"detect_ms\": %.3f, \"mttr_ms\": %.3f},\n\
    \  \"mass_restore\": [\n%s\n  ],\n\
    \  \"mass_restore_ratio\": %.3f\n\
     }\n"
    r.sv_expected s.Serve.st_issued s.st_completed s.st_dups s.st_timeouts
    s.st_retries s.st_redirects s.st_reconnects s.st_inflight
    (String.concat ",\n" (List.map w r.sv_windows))
    r.sv_detect_ms r.sv_mttr_ms
    (String.concat ",\n" [ mass small; mass big ])
    ratio;
  close_out oc

let serve () =
  section
    "SERVE  Availability of a served application: p99 client latency while\n\
    \       the service is checkpointed, migrated and crash-recovered\n\
    \       (1000 connections, exactly-once delivery enforced)";
  let r = serve_run () in
  row "%-12s %8s %10s %10s %10s\n" "window" "reqs" "p50 (ms)" "p90 (ms)" "p99 (ms)";
  List.iter
    (fun (wr : Serve.window_report) ->
      row "%-12s %8d %10.2f %10.2f %10.2f\n" wr.Serve.wr_name wr.wr_count
        wr.wr_p50_ms wr.wr_p90_ms wr.wr_p99_ms)
    r.sv_windows;
  row "crash: detect %.1fms, mttr %.1fms; %d/%d exactly-once (%d retries, %d dups)\n"
    r.sv_detect_ms r.sv_mttr_ms r.sv_stats.Serve.st_completed r.sv_expected
    r.sv_stats.Serve.st_retries r.sv_stats.Serve.st_dups;
  let small = serve_mass_restore 500 in
  let big = serve_mass_restore 2000 in
  let ratio =
    if small.mc_host_s > 1e-6 then big.mc_host_s /. small.mc_host_s else 0.0
  in
  row "mass restore: %d sockets %.3fs -> %d sockets %.3fs (x%.1f)\n"
    small.mc_sockets small.mc_host_s big.mc_sockets big.mc_host_s ratio;
  (* enforce the scaling claim only when the small run is long enough for
     the host clock to mean anything *)
  if small.mc_host_s > 0.01 && ratio > 12.0 then
    failwith
      (Printf.sprintf
         "serve: mass restore scaled x%.1f for 4x the sockets — the restore \
          indexes look broken (quadratic rescan)"
         ratio);
  let path = "BENCH_serve.json" in
  serve_json path r small big ratio;
  Printf.printf "\nwrote %s BENCH_serve_trace.json BENCH_serve_metrics.json\n" path

(* ------------------------------------------------------------------ *)
(* SCALE: cluster-scale coordination — flat star vs hierarchical tree  *)
(* ------------------------------------------------------------------ *)

(* Coordinated checkpoint of one (contentless) pod per node at N up to
   1000.  With the per-pod image costs pinned small and jitter off, the
   sweep isolates the CONTROL PLANE: per-message serial processing at
   each coordinator (ctrl_proc) plus per-hop channel latency.  A flat
   star pays O(N) serial sends and receives at the root every phase; a
   fanout-k tree pays O(log_k N) hops of latency but only O(k) serial
   work per coordinator, so the two curves cross in the low hundreds of
   nodes and the tree pulls away from there (DESIGN.md section 13).

   The same artifact carries the engine hot-path rework numbers: raw
   events/s of the heap baseline vs the calendar queue under steady-state
   churn (micro.ml), gated at >= 5x.  Those two rates are host facts —
   they live under "host" keys so the obs_diff baseline skips them — but
   the ratio floor is enforced right here with a hard failure. *)

let scale_fanout = 4
let scale_counts = [ 16; 64; 128; 256; 512; 1000 ]

(* The smallest possible resident: allocate one page, then park in a
   sleep loop forever.  One of these per node keeps every Agent's
   checkpoint real (a live process, a memory region, program state to
   encode) while contributing nothing to the latency being measured. *)
module Idler = struct
  module Program = Zapc_simos.Program
  module Syscall = Zapc_simos.Syscall

  type state = { mutable booted : bool }

  let name = "bench.idler"
  let start _args = { booted = false }

  let step s (_ : Syscall.outcome) =
    if not s.booted then begin
      s.booted <- true;
      (s, Program.Sys (Syscall.Mem_alloc ("idle", 4096)))
    end
    else (s, Program.Sys (Syscall.Nanosleep (Simtime.sec 50.0)))

  let to_value s = Value.Bool s.booted
  let of_value v = { booted = Value.to_bool v }
end

let scale_params fanout =
  { Params.default with
    Params.ctrl_latency = Simtime.us 300;
    ctrl_proc = Simtime.us 25;
    tree_fanout = fanout;
    cost_jitter = 0.0;
    storage_bps = 1e12;
    ckpt_fixed = Simtime.us 200;
    restore_fixed = Simtime.us 200 }

type scale_row = {
  sc_nodes : int;
  sc_flat_ms : float;
  sc_tree_ms : float;
  sc_depth : int;  (* relay hops below the manager in the tree arm *)
}

let scale_arm ~nodes ~fanout =
  Zapc_simos.Program.register_if_absent (module Idler);
  let cluster =
    Cluster.make ~seed:42 ~params:(scale_params fanout) ~node_count:nodes ()
  in
  let pods =
    List.init nodes (fun i ->
        Cluster.create_pod cluster ~node_idx:i
          ~name:(Printf.sprintf "idler%d" i))
  in
  Cluster.link_pods pods;
  List.iter
    (fun pod -> ignore (Pod.spawn pod ~program:Idler.name ~args:Value.unit))
    pods;
  (* let every idler boot and park before the measured checkpoint *)
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  let r = Cluster.snapshot cluster ~pods ~key_prefix:"scale" in
  if not r.Manager.r_ok then
    failwith
      (Printf.sprintf "scale: checkpoint failed at %d nodes (fanout %d): %s"
         nodes fanout r.Manager.r_detail);
  let depth =
    int_of_float (Zapc_obs.Metrics.gauge (Cluster.metrics cluster) "mgr.tree.depth")
  in
  (Simtime.to_sec r.Manager.r_duration *. 1000.0, depth)

let scale_measure nodes =
  let flat_ms, _ = scale_arm ~nodes ~fanout:0 in
  let tree_ms, depth = scale_arm ~nodes ~fanout:scale_fanout in
  { sc_nodes = nodes; sc_flat_ms = flat_ms; sc_tree_ms = tree_ms;
    sc_depth = depth }

let scale_json path rows crossover (heap_rate, cal_rate, eng_ratio) =
  let oc = open_out path in
  let field r =
    Printf.sprintf
      "    {\"nodes\": %d, \"flat_ms\": %.3f, \"tree_ms\": %.3f, \
       \"tree_depth\": %d, \"speedup_ratio\": %.3f}"
      r.sc_nodes r.sc_flat_ms r.sc_tree_ms r.sc_depth
      (r.sc_flat_ms /. r.sc_tree_ms)
  in
  let last = List.nth rows (List.length rows - 1) in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"scale\",\n\
    \  \"scenario\": \"coordinated checkpoint of one pod per node, flat star \
     vs fanout-%d tree\",\n\
    \  \"source\": \"Manager r_duration; mgr.tree.* gauges (see \
     doc/OBSERVABILITY.md)\",\n\
    \  \"fanout\": %d,\n\
    \  \"sweep\": [\n%s\n  ],\n\
    \  \"crossover_nodes\": %d,\n\
    \  \"max_nodes_speedup_ratio\": %.3f,\n\
    \  \"engine\": {\"events\": %d, \"standing\": %d,\n\
    \             \"host_heap_events_per_sec\": %.0f,\n\
    \             \"host_calendar_events_per_sec\": %.0f,\n\
    \             \"host_speedup\": %.2f, \"floor_ratio\": 5.0}\n\
     }\n"
    scale_fanout scale_fanout
    (String.concat ",\n" (List.map field rows))
    crossover
    (last.sc_flat_ms /. last.sc_tree_ms)
    Micro.churn_events Micro.churn_standing heap_rate cal_rate eng_ratio;
  close_out oc

let scale () =
  section
    (Printf.sprintf
       "SCALE  Coordinated-checkpoint latency, flat star vs fanout-%d tree\n\
       \       (one pod per node; 25us serial per message at every\n\
       \       coordinator, 300us per-hop latency) + engine events/s, heap\n\
       \       baseline vs calendar queue"
       scale_fanout);
  row "%6s %12s %12s %7s %9s\n" "nodes" "flat (ms)" "tree (ms)" "depth"
    "speedup";
  let rows = List.map scale_measure scale_counts in
  List.iter
    (fun r ->
      row "%6d %12.2f %12.2f %7d %8.2fx\n" r.sc_nodes r.sc_flat_ms r.sc_tree_ms
        r.sc_depth (r.sc_flat_ms /. r.sc_tree_ms))
    rows;
  let crossover =
    match List.find_opt (fun r -> r.sc_tree_ms < r.sc_flat_ms) rows with
    | Some r -> r.sc_nodes
    | None -> failwith "scale: tree never beat flat — hierarchy is broken"
  in
  let last = List.nth rows (List.length rows - 1) in
  if last.sc_tree_ms >= last.sc_flat_ms then
    failwith
      (Printf.sprintf
         "scale: tree slower than flat at %d nodes (%.2fms vs %.2fms)"
         last.sc_nodes last.sc_tree_ms last.sc_flat_ms);
  row "crossover at %d nodes; %.2fx at %d nodes\n" crossover
    (last.sc_flat_ms /. last.sc_tree_ms) last.sc_nodes;
  let ((heap_rate, cal_rate, eng_ratio) as eng) = Micro.engine_throughput () in
  row "engine churn: heap %.2f Mev/s, calendar %.2f Mev/s (%.2fx)\n"
    (heap_rate /. 1e6) (cal_rate /. 1e6) eng_ratio;
  if eng_ratio < 5.0 then
    failwith
      (Printf.sprintf
         "scale: calendar queue only %.2fx over the heap baseline (floor 5x)"
         eng_ratio);
  (* a traced tree-mode checkpoint: the causal tree must survive the
     extra relay hop (manager op span -> agent pod spans, cross-node
     parent edges intact), validated by obs_check --causal in @scale *)
  Zapc_simos.Program.register_if_absent (module Idler);
  let cluster =
    Cluster.make ~seed:42 ~params:(scale_params scale_fanout) ~node_count:16 ()
  in
  let pods =
    List.init 16 (fun i ->
        Cluster.create_pod cluster ~node_idx:i
          ~name:(Printf.sprintf "idler%d" i))
  in
  Cluster.link_pods pods;
  List.iter
    (fun pod -> ignore (Pod.spawn pod ~program:Idler.name ~args:Value.unit))
    pods;
  let tr = Cluster.enable_trace cluster in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  let r = Cluster.snapshot cluster ~pods ~key_prefix:"scale_traced" in
  if not r.Manager.r_ok then
    failwith ("scale: traced tree checkpoint failed: " ^ r.Manager.r_detail);
  Zapc.Trace.dump_chrome tr "BENCH_scale_trace.json";
  let path = "BENCH_scale.json" in
  scale_json path rows crossover eng;
  Printf.printf "\nwrote %s BENCH_scale_trace.json\n" path
