(* Experiment harness entry point.

   Usage: bench/main.exe [fig5|fig6a|fig6b|fig6c|netstate|variance|ablation|micro|availability|migration|serve|all|quick]

   Each experiment regenerates the corresponding table/figure of the paper
   (see DESIGN.md's experiment index and EXPERIMENTS.md for the comparison
   against the published results). *)

let usage () =
  print_endline
    "usage: main.exe [fig5|fig6a|fig6b|fig6c|netstate|variance|ablation|timeline|flush|storage|micro|availability|incremental|migration|serve|profile|scale|all|quick]"

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  Zapc_apps.Registry.register_all ();
  match what with
  | "fig5" -> Experiments.fig5 ()
  | "variance" -> Experiments.fig5_variance ()
  | "fig6a" -> Experiments.fig6a ()
  | "fig6b" -> Experiments.fig6b ()
  | "fig6c" -> Experiments.fig6c ()
  | "netstate" -> Experiments.netstate ()
  | "ablation" -> Experiments.ablations ()
  | "timeline" -> Experiments.timeline ()
  | "flush" -> Experiments.storage_flush ()
  | "storage" -> Experiments.storage_backends ()
  | "micro" -> Micro.run ()
  | "availability" -> Experiments.availability ()
  | "incremental" -> Experiments.incremental ()
  | "migration" -> Experiments.migration ()
  | "serve" -> Experiments.serve ()
  | "profile" -> Experiments.profile ()
  | "scale" -> Experiments.scale ()
  | "all" ->
    Experiments.fig5 ();
    Experiments.fig6a ();
    Experiments.fig6b ();
    Experiments.fig6c ();
    Experiments.netstate ();
    Experiments.fig5_variance ();
    Experiments.ablations ();
    Experiments.timeline ();
    Experiments.storage_flush ();
    Experiments.storage_backends ();
    Experiments.availability ();
    Experiments.incremental ();
    Experiments.migration ();
    Experiments.serve ();
    Experiments.profile ();
    Experiments.scale ();
    Micro.run ()
  | "quick" -> Experiments.quick ()
  | _ -> usage ()
