(* Unit tests of the observability layer: the metrics registry (counters,
   gauges, histogram quantiles, JSON snapshot), the span recorder, the
   Chrome trace_event exporter, the JSON reader used to validate the
   exporters, the Stats percentile/empty-render fixes, and the Trace
   observer lifecycle. *)

module Simtime = Zapc_sim.Simtime
module Stats = Zapc_sim.Stats
module Metrics = Zapc_obs.Metrics
module Span = Zapc_obs.Span
module Chrome = Zapc_obs.Chrome
module Json = Zapc_obs.Json
module Flight = Zapc_obs.Flight
module Critpath = Zapc_obs.Critpath

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tfloat = Alcotest.float 1e-6

let ok_json s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "JSON rejected: %s\n%s" e s

(* --- metrics --- *)

let test_counters () =
  let m = Metrics.create () in
  check tint "absent counter reads 0" 0 (Metrics.counter m "x");
  Metrics.incr m "x";
  Metrics.incr m "x";
  Metrics.add m "x" 40;
  check tint "incr/add accumulate" 42 (Metrics.counter m "x");
  Metrics.clear m;
  check tint "clear resets" 0 (Metrics.counter m "x")

let test_gauges () =
  let m = Metrics.create () in
  check tfloat "absent gauge reads 0" 0.0 (Metrics.gauge m "g");
  Metrics.set_gauge m "g" 1.5;
  Metrics.set_gauge m "g" 2.5;
  check tfloat "last write wins" 2.5 (Metrics.gauge m "g");
  let n = ref 0 in
  Metrics.gauge_fn m "f" (fun () -> Stdlib.incr n; float_of_int !n);
  check tfloat "callback sampled at read" 1.0 (Metrics.gauge m "f");
  check tfloat "resampled each read" 2.0 (Metrics.gauge m "f")

let test_histogram_quantiles () =
  let m = Metrics.create () in
  check tfloat "empty quantile is 0" 0.0 (Metrics.p50 m "h");
  for i = 1 to 100 do
    Metrics.observe m "h" (float_of_int i)
  done;
  check tint "count" 100 (Metrics.hist_count m "h");
  check tfloat "sum" 5050.0 (Metrics.hist_sum m "h");
  let p50 = Metrics.p50 m "h" and p99 = Metrics.p99 m "h" in
  check tbool "p50 in the middle" true (p50 >= 40.0 && p50 <= 60.0);
  check tbool "p99 near the top" true (p99 >= 90.0 && p99 <= 100.0);
  check tbool "quantiles ordered" true
    (p50 <= Metrics.p90 m "h" && Metrics.p90 m "h" <= p99);
  (* quantiles are clamped to the observed range even in the +inf bucket *)
  Metrics.observe m "o" 1e12;
  check tfloat "overflow clamps to max" 1e12 (Metrics.p99 m "o")

let test_exp_buckets () =
  let b = Metrics.exp_buckets ~start:1.0 ~factor:2.0 ~n:4 in
  check tbool "geometric" true (b = [| 1.0; 2.0; 4.0; 8.0 |]);
  check tbool "bad start rejected" true
    (try ignore (Metrics.exp_buckets ~start:0.0 ~factor:2.0 ~n:2); false
     with Invalid_argument _ -> true)

let test_metrics_json () =
  let m = Metrics.create () in
  Metrics.incr m "a.count";
  Metrics.set_gauge m "b.level" 3.25;
  Metrics.observe m "c_ms" 7.0;
  Metrics.observe m "c_ms" 9.0;
  let v = ok_json (Metrics.to_json m) in
  let num path1 path2 =
    Option.bind (Json.member path1 v) (fun o ->
        Option.bind (Json.member path2 o) Json.to_float)
  in
  check tbool "counter exported" true (num "counters" "a.count" = Some 1.0);
  check tbool "gauge exported" true (num "gauges" "b.level" = Some 3.25);
  (match Option.bind (Json.member "histograms" v) (Json.member "c_ms") with
   | Some h ->
     check tbool "hist count" true
       (Option.bind (Json.member "count" h) Json.to_float = Some 2.0);
     check tbool "hist sum" true
       (Option.bind (Json.member "sum" h) Json.to_float = Some 16.0)
   | None -> Alcotest.fail "histogram missing from snapshot");
  (* snapshot of a deterministic registry is itself deterministic *)
  check tbool "deterministic" true (String.equal (Metrics.to_json m) (Metrics.to_json m))

(* A membership probe is pure instrumentation-wise: [Storage.mem] used to be
   implemented as [get t key <> None], so every liveness poll inflated
   storage.gets/get_misses (and paid a full materialize+verify).  The whole
   registry snapshot must be byte-identical across any number of probes. *)
let test_storage_mem_metric_neutral () =
  let module Engine = Zapc_sim.Engine in
  let module Storage = Zapc.Storage in
  let module Value = Zapc_codec.Value in
  let engine = Engine.create ~seed:3 () in
  let m = Metrics.create () in
  let storage = Storage.create ~metrics:m ~replicas:2 engine in
  let img =
    Zapc_ckpt.Image.of_pod_image
      (Value.assoc
         [ ("pod_id", Value.int 7); ("name", Value.str "probe");
           ("memory_bytes", Value.int 8192) ])
  in
  (match Storage.put storage "probe.k" img with
   | Ok () -> ()
   | Error e -> Alcotest.failf "put failed: %s" e);
  let before = Metrics.to_json m in
  for _ = 1 to 50 do
    check tbool "present key answers true" true (Storage.mem storage "probe.k");
    check tbool "absent key answers false" false (Storage.mem storage "nope")
  done;
  check Alcotest.string "registry untouched by mem probes" before
    (Metrics.to_json m);
  check tint "no reads counted" 0 (Metrics.counter m "storage.gets");
  check tint "no misses counted" 0 (Metrics.counter m "storage.get_misses");
  (* a real read still counts, proving the registry is live *)
  check tbool "get serves" true (Storage.get storage "probe.k" <> None);
  check tint "get counted" 1 (Metrics.counter m "storage.gets")

(* --- spans --- *)

let ms = Simtime.ms

let test_span_basic () =
  let r = Span.create () in
  let s = Span.begin_span r ~time:(ms 1) ~op:7 ~pod:3 "work" in
  check tint "one open" 1 (List.length (Span.open_spans r));
  Span.end_span r ~time:(ms 5) s;
  Span.end_span r ~time:(ms 9) s;
  (match Span.spans r with
   | [ sp ] ->
     check tbool "close is idempotent" true (sp.Span.sp_end = Some (ms 5));
     check tint "op kept" 7 sp.Span.sp_op
   | l -> Alcotest.failf "expected 1 span, got %d" (List.length l));
  check tint "none open" 0 (List.length (Span.open_spans r))

let test_span_end_named () =
  let r = Span.create () in
  let _outer = Span.begin_span r ~time:(ms 1) ~pod:1 "phase" in
  let _inner = Span.begin_span r ~time:(ms 2) ~pod:1 "phase" in
  let _other = Span.begin_span r ~time:(ms 3) ~pod:2 "phase" in
  check tbool "closes most recent of the pod" true
    (Span.end_named r ~time:(ms 4) ~pod:1 "phase");
  (match Span.spans r with
   | [ a; b; c ] ->
     check tbool "outer still open" true (a.Span.sp_end = None);
     check tbool "inner closed" true (b.Span.sp_end = Some (ms 4));
     check tbool "other pod untouched" true (c.Span.sp_end = None)
   | _ -> Alcotest.fail "expected 3 spans");
  check tbool "no match returns false" false
    (Span.end_named r ~time:(ms 5) ~pod:9 "phase");
  Span.end_all_for_pod r ~time:(ms 6) ~pod:1;
  check tint "only pod 2 left open" 1 (List.length (Span.open_spans r));
  check tbool "last_time tracks" true (Simtime.compare (Span.last_time r) (ms 6) = 0)

let test_span_chronological () =
  let r = Span.create () in
  let a = Span.begin_span r ~time:(ms 5) ~pod:1 "b" in
  let b = Span.begin_span r ~time:(ms 2) ~pod:1 "a" in
  Span.end_span r ~time:(ms 6) a;
  Span.end_span r ~time:(ms 7) b;
  Span.instant r ~time:(ms 4) ~pod:1 "tick";
  Span.instant r ~time:(ms 3) ~pod:1 "tock";
  check tbool "spans sorted by begin time" true
    (List.map (fun s -> s.Span.sp_name) (Span.spans r) = [ "a"; "b" ]);
  check tbool "instants sorted by time" true
    (List.map (fun i -> i.Span.in_what) (Span.instants r) = [ "tock"; "tick" ])

let test_span_parent_links () =
  let r = Span.create () in
  let events = ref [] in
  Span.set_observer r (Some (fun e -> events := e :: !events));
  let root = Span.begin_span r ~time:(ms 1) ~pod:(-1) ~node:(-1) "op" in
  let child =
    Span.begin_span r ~time:(ms 2) ~parent:root.Span.sp_id ~pod:3 ~node:1
      "pod_ckpt"
  in
  check tbool "root has no parent" true (root.Span.sp_parent = None);
  check tbool "child links its parent" true
    (child.Span.sp_parent = Some root.Span.sp_id);
  check tbool "ids are distinct" true (root.Span.sp_id <> child.Span.sp_id);
  check tbool "parent resolves" true
    (match Span.find_span r root.Span.sp_id with
     | Some sp -> String.equal sp.Span.sp_name "op"
     | None -> false);
  Span.end_span r ~time:(ms 4) child;
  Span.end_span r ~time:(ms 5) root;
  (* observer saw two opens then two closes, closes with sp_end set *)
  let opens, closes =
    List.partition (function Span.Opened _ -> true | Span.Closed _ -> false)
      !events
  in
  check tint "observer saw the opens" 2 (List.length opens);
  check tint "observer saw the closes" 2 (List.length closes);
  check tbool "close carries the end time" true
    (List.for_all
       (function Span.Closed sp -> sp.Span.sp_end <> None | _ -> true)
       closes);
  Span.set_observer r None;
  ignore (Span.begin_span r ~time:(ms 6) ~pod:0 "quiet");
  check tint "observer detached" 4 (List.length !events)

(* --- chrome exporter --- *)

let test_chrome_export () =
  let r = Span.create () in
  let s = Span.begin_span r ~time:(ms 1) ~op:1 ~node:0 ~pod:1 "pod_ckpt" in
  ignore (Span.begin_span r ~time:(ms 2) ~pod:(-1) "mgr_sync");
  Span.end_span r ~time:(ms 4) s;
  Span.instant r ~time:(ms 3) ~node:0 ~pod:1 "meta_sent";
  let v = ok_json (Chrome.to_string r) in
  let events =
    match Option.bind (Json.member "traceEvents" v) Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents"
  in
  let phase ev = Option.bind (Json.member "ph" ev) Json.to_string_opt in
  let named ph name =
    List.find_opt
      (fun ev ->
        phase ev = Some ph
        && Option.bind (Json.member "name" ev) Json.to_string_opt = Some name)
      events
  in
  check tbool "metadata rows present" true (named "M" "process_name" <> None);
  (match named "X" "pod_ckpt" with
   | Some ev ->
     let num k = Option.bind (Json.member k ev) Json.to_float in
     check tbool "ts in us" true (num "ts" = Some 1000.0);
     check tbool "dur in us" true (num "dur" = Some 3000.0);
     check tbool "pid = node+1" true (num "pid" = Some 1.0)
   | None -> Alcotest.fail "pod_ckpt X event missing");
  (* the still-open mgr_sync is closed at last_time and flagged *)
  (match named "X" "mgr_sync" with
   | Some ev ->
     check tbool "unfinished flagged" true
       (Option.bind (Json.member "args" ev) (Json.member "unfinished") <> None)
   | None -> Alcotest.fail "open span not exported");
  check tbool "instant exported" true (named "i" "meta_sent" <> None)

(* Cross-node parent: the child's X row carries sid + parent args and the
   exporter joins the two tracks with an s/f flow pair keyed by the child's
   sid. *)
let test_chrome_causal_args () =
  let r = Span.create () in
  let root = Span.begin_span r ~time:(ms 1) ~pod:(-1) ~node:(-1) "op" in
  let child =
    Span.begin_span r ~time:(ms 2) ~parent:root.Span.sp_id ~pod:3 ~node:1
      "pod_ckpt"
  in
  Span.end_span r ~time:(ms 4) child;
  Span.end_span r ~time:(ms 5) root;
  let v = ok_json (Chrome.to_string r) in
  let events =
    match Option.bind (Json.member "traceEvents" v) Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents"
  in
  let phase ev = Option.bind (Json.member "ph" ev) Json.to_string_opt in
  (match
     List.find_opt
       (fun ev ->
         phase ev = Some "X"
         && Option.bind (Json.member "name" ev) Json.to_string_opt
            = Some "pod_ckpt")
       events
   with
   | Some ev ->
     let arg k =
       Option.bind (Json.member "args" ev) (fun a ->
           Option.bind (Json.member k a) Json.to_float)
     in
     check tbool "sid arg" true
       (arg "sid" = Some (float_of_int child.Span.sp_id));
     check tbool "parent arg" true
       (arg "parent" = Some (float_of_int root.Span.sp_id))
   | None -> Alcotest.fail "child X event missing");
  let flow ph =
    List.find_opt
      (fun ev ->
        phase ev = Some ph
        && Option.bind (Json.member "id" ev) Json.to_float
           = Some (float_of_int child.Span.sp_id))
      events
  in
  check tbool "flow start on the parent's track" true (flow "s" <> None);
  check tbool "flow finish on the child's track" true (flow "f" <> None)

(* --- the JSON reader itself --- *)

let test_json_reader () =
  (match ok_json {| {"a": [1, -2.5e1, true, null], "b\n": "xA"} |} with
   | Json.Obj [ ("a", Json.List l); ("b\n", Json.Str s) ] ->
     check tint "list length" 4 (List.length l);
     check tbool "numbers" true (List.nth l 1 = Json.Num (-25.0));
     check tbool "escape decoded" true (String.equal s "xA")
   | _ -> Alcotest.fail "unexpected shape");
  check tbool "trailing garbage rejected" true
    (match Json.parse "{} x" with Error _ -> true | Ok _ -> false);
  check tbool "unterminated rejected" true
    (match Json.parse "[1, 2" with Error _ -> true | Ok _ -> false)

(* every escape our exporters emit (Chrome.esc, Flight.esc) must decode *)
let test_json_escapes () =
  (match ok_json {| "a\"b\\c\nd\re\tf" |} with
   | Json.Str s -> check tbool "simple escapes" true (String.equal s "a\"b\\c\nd\re\tf")
   | _ -> Alcotest.fail "expected a string");
  (match ok_json {| "\u0041\u005f" |} with
   | Json.Str s -> check tbool "uXXXX decoded" true (String.equal s "A_")
   | _ -> Alcotest.fail "expected a string");
  (* a control character escaped the way Chrome.esc writes it *)
  (match ok_json {| "x\u0007y" |} with
   | Json.Str s -> check tbool "control escape" true (String.equal s "x\007y")
   | _ -> Alcotest.fail "expected a string");
  check tbool "bad escape rejected" true
    (match Json.parse {| "\q" |} with Error _ -> true | Ok _ -> false);
  check tbool "truncated \\u rejected" true
    (match Json.parse {| "\u00" |} with Error _ -> true | Ok _ -> false)

(* deep nesting parses without blowing the stack at trace-file depths, and
   malformed documents come back as [Error], never as an exception *)
let test_json_nesting_and_malformed () =
  let depth = 512 in
  let deep =
    String.concat "" (List.init depth (fun _ -> "["))
    ^ "1"
    ^ String.concat "" (List.init depth (fun _ -> "]"))
  in
  let rec count v = match v with Json.List [ x ] -> 1 + count x | _ -> 0 in
  check tint "512-deep array" depth (count (ok_json deep));
  let nested_obj = {| {"a": {"b": {"c": {"d": [{"e": 1}]}}}} |} in
  check tbool "nested object path" true
    (let open Option in
     bind (Json.member "a" (ok_json nested_obj)) (Json.member "b")
     |> Fun.flip bind (Json.member "c")
     |> Fun.flip bind (Json.member "d")
     <> None);
  List.iter
    (fun s ->
      match Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "malformed accepted: %s" s)
    [ "{"; "}"; {| {"a"} |}; {| {"a":} |}; "[1,]"; {| {"a":1,} |}; "tru";
      "nul"; "+1"; {| {1: 2} |}; ""; "\"unterminated" ]

(* --- flight recorder --- *)

let test_flight_ring_bounds () =
  let fl = Flight.create ~cap:4 () in
  for i = 1 to 10 do
    Flight.record fl ~node:0
      (Flight.Instant { f_time = ms i; f_pod = 0; f_what = Printf.sprintf "i%d" i })
  done;
  Flight.record fl ~node:1
    (Flight.Instant { f_time = ms 99; f_pod = -1; f_what = "other-ring" });
  let entries = Flight.entries fl ~node:0 in
  check tint "ring keeps only cap entries" 4 (List.length entries);
  check tbool "oldest evicted, order kept" true
    (List.map
       (function Flight.Instant { f_what; _ } -> f_what | _ -> "?")
       entries
     = [ "i7"; "i8"; "i9"; "i10" ]);
  check tint "rings are per node" 1 (List.length (Flight.entries fl ~node:1));
  check tbool "nodes listed" true (List.sort compare (Flight.nodes fl) = [ 0; 1 ])

let test_flight_dump_roundtrip () =
  let fl = Flight.create ~cap:8 () in
  let recorded =
    [ (0,
       Flight.Span_open
         { f_time = ms 1; f_id = 7; f_name = "pod_ckpt"; f_op = 3; f_pod = 2;
           f_parent = Some 5 });
      (0, Flight.Span_close { f_time = ms 2; f_id = 7 });
      (1,
       Flight.Span_open
         { f_time = ms 3; f_id = 9; f_name = "net_ckpt\"x"; f_op = 3; f_pod = 4;
           f_parent = None });
      (-1, Flight.Instant { f_time = ms 4; f_pod = -1; f_what = "op_failed:channel" });
      (-1, Flight.Metric { f_time = ms 5; f_name = "mgr.ckpt.failed"; f_value = 1.5 }) ]
  in
  List.iter (fun (node, e) -> Flight.record fl ~node e) recorded;
  let json = Flight.to_string fl ~time:(ms 6) ~reason:"op_failed:channel" in
  let v = ok_json json in
  check tbool "reason kept" true
    (Option.bind (Json.member "reason" v) Json.to_string_opt
     = Some "op_failed:channel");
  (match Flight.entries_of_json v with
   | None -> Alcotest.fail "dump does not decode"
   | Some decoded ->
     check tint "all entries decoded" (List.length recorded) (List.length decoded);
     List.iter
       (fun (node, e) ->
         if not (List.exists (fun (n, d) -> n = node && d = e) decoded) then
           Alcotest.failf "entry of node %d lost in the round-trip" node)
       recorded);
  (* trip with no dump dir still snapshots to last_dump, and clear drains *)
  Flight.trip fl ~time:(ms 7) ~reason:"fault:crash_node";
  check tint "trip counted" 1 (Flight.trips fl);
  check tbool "last_dump parses" true
    (match Flight.last_dump fl with
     | Some s -> (match Json.parse s with Ok _ -> true | Error _ -> false)
     | None -> false);
  Flight.clear fl;
  check tint "clear drains the rings" 0 (List.length (Flight.nodes fl))

(* --- critical path --- *)

let test_critpath () =
  let r = Span.create () in
  (* the op span covers the whole window: skipped, attributes nothing *)
  let op = Span.begin_span r ~time:(ms 0) ~pod:(-1) "ckpt_op" in
  let a = Span.begin_span r ~time:(ms 0) ~pod:1 "standalone" in
  let b = Span.begin_span r ~time:(ms 6) ~pod:1 "net_ckpt" in
  Span.end_span r ~time:(ms 6) a;
  Span.end_span r ~time:(ms 9) b;
  Span.end_span r ~time:(ms 10) op;
  let rep = Critpath.analyze ~spans:(Span.spans r) ~t0:(ms 0) ~t1:(ms 10) in
  check tbool "total is the window" true (Simtime.compare rep.Critpath.cp_total (ms 10) = 0);
  check tbool "dominant phase" true (String.equal rep.Critpath.cp_dominant "standalone");
  let phase n = List.assoc_opt n rep.Critpath.cp_phases in
  check tbool "standalone charged 6ms" true (phase "standalone" = Some (ms 6));
  check tbool "net_ckpt charged 3ms" true (phase "net_ckpt" = Some (ms 3));
  check tbool "uncovered tail charged to other" true (phase "other" = Some (ms 1));
  check tbool "op span attributes nothing" true (phase "ckpt_op" = None);
  (* every charged nanosecond is charged exactly once *)
  let sum =
    List.fold_left (fun acc (_, d) -> Simtime.add acc d) Simtime.zero
      rep.Critpath.cp_phases
  in
  check tbool "phases sum to total" true (Simtime.compare sum rep.Critpath.cp_total = 0)

(* --- Stats fixes --- *)

let test_stats_empty_render () =
  let s = Stats.create () in
  check tbool "empty renders n=0" true
    (String.equal (Format.asprintf "%a" Stats.pp_ms s) "n=0");
  Stats.add s 1.0;
  check tbool "non-empty has no inf" true
    (let r = Format.asprintf "%a" Stats.pp_ms s in
     not (String.length r >= 3 && String.equal (String.sub r 0 3) "inf"))

let test_stats_percentile () =
  let s = Stats.create () in
  check tfloat "empty percentile is 0" 0.0 (Stats.percentile s 0.5);
  List.iter (Stats.add s) [ 10.0; 20.0; 30.0; 40.0 ];
  check tfloat "p0 = min" 10.0 (Stats.percentile s 0.0);
  check tfloat "p100 = max" 40.0 (Stats.percentile s 1.0);
  check tfloat "p50 interpolates" 25.0 (Stats.percentile s 0.5)

(* --- Trace observer lifecycle --- *)

let test_trace_observers () =
  let tr = Zapc.Trace.create () in
  let fired = ref 0 in
  Zapc.Trace.on_record tr (fun _ -> Stdlib.incr fired);
  Zapc.Trace.record tr ~time:(ms 1) ~pod:0 "a";
  check tint "observer fires" 1 !fired;
  Zapc.Trace.clear tr;
  check tint "clear forgets events" 0 (List.length (Zapc.Trace.events tr));
  Zapc.Trace.record tr ~time:(ms 2) ~pod:0 "b";
  check tint "observers survive clear" 2 !fired;
  Zapc.Trace.clear_observers tr;
  Zapc.Trace.record tr ~time:(ms 3) ~pod:0 "c";
  check tint "clear_observers detaches" 2 !fired

let () =
  Alcotest.run "obs"
    [ ( "metrics",
        [ Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "gauges" `Quick test_gauges;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "exp buckets" `Quick test_exp_buckets;
          Alcotest.test_case "json snapshot" `Quick test_metrics_json;
          Alcotest.test_case "storage.mem is metric-neutral" `Quick
            test_storage_mem_metric_neutral ] );
      ( "spans",
        [ Alcotest.test_case "begin/end" `Quick test_span_basic;
          Alcotest.test_case "end_named" `Quick test_span_end_named;
          Alcotest.test_case "chronological" `Quick test_span_chronological;
          Alcotest.test_case "parent links + observer" `Quick
            test_span_parent_links ] );
      ( "export",
        [ Alcotest.test_case "chrome trace" `Quick test_chrome_export;
          Alcotest.test_case "chrome causal args" `Quick test_chrome_causal_args;
          Alcotest.test_case "json reader" `Quick test_json_reader;
          Alcotest.test_case "json escapes" `Quick test_json_escapes;
          Alcotest.test_case "json nesting + malformed" `Quick
            test_json_nesting_and_malformed ] );
      ( "flight",
        [ Alcotest.test_case "ring bounds" `Quick test_flight_ring_bounds;
          Alcotest.test_case "dump round-trip" `Quick test_flight_dump_roundtrip ] );
      ( "critpath",
        [ Alcotest.test_case "phase attribution" `Quick test_critpath ] );
      ( "stats",
        [ Alcotest.test_case "empty render" `Quick test_stats_empty_render;
          Alcotest.test_case "percentile" `Quick test_stats_percentile ] );
      ( "trace",
        [ Alcotest.test_case "observer lifecycle" `Quick test_trace_observers ] ) ]
