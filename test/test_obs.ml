(* Unit tests of the observability layer: the metrics registry (counters,
   gauges, histogram quantiles, JSON snapshot), the span recorder, the
   Chrome trace_event exporter, the JSON reader used to validate the
   exporters, the Stats percentile/empty-render fixes, and the Trace
   observer lifecycle. *)

module Simtime = Zapc_sim.Simtime
module Stats = Zapc_sim.Stats
module Metrics = Zapc_obs.Metrics
module Span = Zapc_obs.Span
module Chrome = Zapc_obs.Chrome
module Json = Zapc_obs.Json

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tfloat = Alcotest.float 1e-6

let ok_json s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "JSON rejected: %s\n%s" e s

(* --- metrics --- *)

let test_counters () =
  let m = Metrics.create () in
  check tint "absent counter reads 0" 0 (Metrics.counter m "x");
  Metrics.incr m "x";
  Metrics.incr m "x";
  Metrics.add m "x" 40;
  check tint "incr/add accumulate" 42 (Metrics.counter m "x");
  Metrics.clear m;
  check tint "clear resets" 0 (Metrics.counter m "x")

let test_gauges () =
  let m = Metrics.create () in
  check tfloat "absent gauge reads 0" 0.0 (Metrics.gauge m "g");
  Metrics.set_gauge m "g" 1.5;
  Metrics.set_gauge m "g" 2.5;
  check tfloat "last write wins" 2.5 (Metrics.gauge m "g");
  let n = ref 0 in
  Metrics.gauge_fn m "f" (fun () -> Stdlib.incr n; float_of_int !n);
  check tfloat "callback sampled at read" 1.0 (Metrics.gauge m "f");
  check tfloat "resampled each read" 2.0 (Metrics.gauge m "f")

let test_histogram_quantiles () =
  let m = Metrics.create () in
  check tfloat "empty quantile is 0" 0.0 (Metrics.p50 m "h");
  for i = 1 to 100 do
    Metrics.observe m "h" (float_of_int i)
  done;
  check tint "count" 100 (Metrics.hist_count m "h");
  check tfloat "sum" 5050.0 (Metrics.hist_sum m "h");
  let p50 = Metrics.p50 m "h" and p99 = Metrics.p99 m "h" in
  check tbool "p50 in the middle" true (p50 >= 40.0 && p50 <= 60.0);
  check tbool "p99 near the top" true (p99 >= 90.0 && p99 <= 100.0);
  check tbool "quantiles ordered" true
    (p50 <= Metrics.p90 m "h" && Metrics.p90 m "h" <= p99);
  (* quantiles are clamped to the observed range even in the +inf bucket *)
  Metrics.observe m "o" 1e12;
  check tfloat "overflow clamps to max" 1e12 (Metrics.p99 m "o")

let test_exp_buckets () =
  let b = Metrics.exp_buckets ~start:1.0 ~factor:2.0 ~n:4 in
  check tbool "geometric" true (b = [| 1.0; 2.0; 4.0; 8.0 |]);
  check tbool "bad start rejected" true
    (try ignore (Metrics.exp_buckets ~start:0.0 ~factor:2.0 ~n:2); false
     with Invalid_argument _ -> true)

let test_metrics_json () =
  let m = Metrics.create () in
  Metrics.incr m "a.count";
  Metrics.set_gauge m "b.level" 3.25;
  Metrics.observe m "c_ms" 7.0;
  Metrics.observe m "c_ms" 9.0;
  let v = ok_json (Metrics.to_json m) in
  let num path1 path2 =
    Option.bind (Json.member path1 v) (fun o ->
        Option.bind (Json.member path2 o) Json.to_float)
  in
  check tbool "counter exported" true (num "counters" "a.count" = Some 1.0);
  check tbool "gauge exported" true (num "gauges" "b.level" = Some 3.25);
  (match Option.bind (Json.member "histograms" v) (Json.member "c_ms") with
   | Some h ->
     check tbool "hist count" true
       (Option.bind (Json.member "count" h) Json.to_float = Some 2.0);
     check tbool "hist sum" true
       (Option.bind (Json.member "sum" h) Json.to_float = Some 16.0)
   | None -> Alcotest.fail "histogram missing from snapshot");
  (* snapshot of a deterministic registry is itself deterministic *)
  check tbool "deterministic" true (String.equal (Metrics.to_json m) (Metrics.to_json m))

(* --- spans --- *)

let ms = Simtime.ms

let test_span_basic () =
  let r = Span.create () in
  let s = Span.begin_span r ~time:(ms 1) ~op:7 ~pod:3 "work" in
  check tint "one open" 1 (List.length (Span.open_spans r));
  Span.end_span r ~time:(ms 5) s;
  Span.end_span r ~time:(ms 9) s;
  (match Span.spans r with
   | [ sp ] ->
     check tbool "close is idempotent" true (sp.Span.sp_end = Some (ms 5));
     check tint "op kept" 7 sp.Span.sp_op
   | l -> Alcotest.failf "expected 1 span, got %d" (List.length l));
  check tint "none open" 0 (List.length (Span.open_spans r))

let test_span_end_named () =
  let r = Span.create () in
  let _outer = Span.begin_span r ~time:(ms 1) ~pod:1 "phase" in
  let _inner = Span.begin_span r ~time:(ms 2) ~pod:1 "phase" in
  let _other = Span.begin_span r ~time:(ms 3) ~pod:2 "phase" in
  check tbool "closes most recent of the pod" true
    (Span.end_named r ~time:(ms 4) ~pod:1 "phase");
  (match Span.spans r with
   | [ a; b; c ] ->
     check tbool "outer still open" true (a.Span.sp_end = None);
     check tbool "inner closed" true (b.Span.sp_end = Some (ms 4));
     check tbool "other pod untouched" true (c.Span.sp_end = None)
   | _ -> Alcotest.fail "expected 3 spans");
  check tbool "no match returns false" false
    (Span.end_named r ~time:(ms 5) ~pod:9 "phase");
  Span.end_all_for_pod r ~time:(ms 6) ~pod:1;
  check tint "only pod 2 left open" 1 (List.length (Span.open_spans r));
  check tbool "last_time tracks" true (Simtime.compare (Span.last_time r) (ms 6) = 0)

let test_span_chronological () =
  let r = Span.create () in
  let a = Span.begin_span r ~time:(ms 5) ~pod:1 "b" in
  let b = Span.begin_span r ~time:(ms 2) ~pod:1 "a" in
  Span.end_span r ~time:(ms 6) a;
  Span.end_span r ~time:(ms 7) b;
  Span.instant r ~time:(ms 4) ~pod:1 "tick";
  Span.instant r ~time:(ms 3) ~pod:1 "tock";
  check tbool "spans sorted by begin time" true
    (List.map (fun s -> s.Span.sp_name) (Span.spans r) = [ "a"; "b" ]);
  check tbool "instants sorted by time" true
    (List.map (fun i -> i.Span.in_what) (Span.instants r) = [ "tock"; "tick" ])

(* --- chrome exporter --- *)

let test_chrome_export () =
  let r = Span.create () in
  let s = Span.begin_span r ~time:(ms 1) ~op:1 ~node:0 ~pod:1 "pod_ckpt" in
  ignore (Span.begin_span r ~time:(ms 2) ~pod:(-1) "mgr_sync");
  Span.end_span r ~time:(ms 4) s;
  Span.instant r ~time:(ms 3) ~node:0 ~pod:1 "meta_sent";
  let v = ok_json (Chrome.to_string r) in
  let events =
    match Option.bind (Json.member "traceEvents" v) Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents"
  in
  let phase ev = Option.bind (Json.member "ph" ev) Json.to_string_opt in
  let named ph name =
    List.find_opt
      (fun ev ->
        phase ev = Some ph
        && Option.bind (Json.member "name" ev) Json.to_string_opt = Some name)
      events
  in
  check tbool "metadata rows present" true (named "M" "process_name" <> None);
  (match named "X" "pod_ckpt" with
   | Some ev ->
     let num k = Option.bind (Json.member k ev) Json.to_float in
     check tbool "ts in us" true (num "ts" = Some 1000.0);
     check tbool "dur in us" true (num "dur" = Some 3000.0);
     check tbool "pid = node+1" true (num "pid" = Some 1.0)
   | None -> Alcotest.fail "pod_ckpt X event missing");
  (* the still-open mgr_sync is closed at last_time and flagged *)
  (match named "X" "mgr_sync" with
   | Some ev ->
     check tbool "unfinished flagged" true
       (Option.bind (Json.member "args" ev) (Json.member "unfinished") <> None)
   | None -> Alcotest.fail "open span not exported");
  check tbool "instant exported" true (named "i" "meta_sent" <> None)

(* --- the JSON reader itself --- *)

let test_json_reader () =
  (match ok_json {| {"a": [1, -2.5e1, true, null], "b\n": "xA"} |} with
   | Json.Obj [ ("a", Json.List l); ("b\n", Json.Str s) ] ->
     check tint "list length" 4 (List.length l);
     check tbool "numbers" true (List.nth l 1 = Json.Num (-25.0));
     check tbool "escape decoded" true (String.equal s "xA")
   | _ -> Alcotest.fail "unexpected shape");
  check tbool "trailing garbage rejected" true
    (match Json.parse "{} x" with Error _ -> true | Ok _ -> false);
  check tbool "unterminated rejected" true
    (match Json.parse "[1, 2" with Error _ -> true | Ok _ -> false)

(* --- Stats fixes --- *)

let test_stats_empty_render () =
  let s = Stats.create () in
  check tbool "empty renders n=0" true
    (String.equal (Format.asprintf "%a" Stats.pp_ms s) "n=0");
  Stats.add s 1.0;
  check tbool "non-empty has no inf" true
    (let r = Format.asprintf "%a" Stats.pp_ms s in
     not (String.length r >= 3 && String.equal (String.sub r 0 3) "inf"))

let test_stats_percentile () =
  let s = Stats.create () in
  check tfloat "empty percentile is 0" 0.0 (Stats.percentile s 0.5);
  List.iter (Stats.add s) [ 10.0; 20.0; 30.0; 40.0 ];
  check tfloat "p0 = min" 10.0 (Stats.percentile s 0.0);
  check tfloat "p100 = max" 40.0 (Stats.percentile s 1.0);
  check tfloat "p50 interpolates" 25.0 (Stats.percentile s 0.5)

(* --- Trace observer lifecycle --- *)

let test_trace_observers () =
  let tr = Zapc.Trace.create () in
  let fired = ref 0 in
  Zapc.Trace.on_record tr (fun _ -> Stdlib.incr fired);
  Zapc.Trace.record tr ~time:(ms 1) ~pod:0 "a";
  check tint "observer fires" 1 !fired;
  Zapc.Trace.clear tr;
  check tint "clear forgets events" 0 (List.length (Zapc.Trace.events tr));
  Zapc.Trace.record tr ~time:(ms 2) ~pod:0 "b";
  check tint "observers survive clear" 2 !fired;
  Zapc.Trace.clear_observers tr;
  Zapc.Trace.record tr ~time:(ms 3) ~pod:0 "c";
  check tint "clear_observers detaches" 2 !fired

let () =
  Alcotest.run "obs"
    [ ( "metrics",
        [ Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "gauges" `Quick test_gauges;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "exp buckets" `Quick test_exp_buckets;
          Alcotest.test_case "json snapshot" `Quick test_metrics_json ] );
      ( "spans",
        [ Alcotest.test_case "begin/end" `Quick test_span_basic;
          Alcotest.test_case "end_named" `Quick test_span_end_named;
          Alcotest.test_case "chronological" `Quick test_span_chronological ] );
      ( "export",
        [ Alcotest.test_case "chrome trace" `Quick test_chrome_export;
          Alcotest.test_case "json reader" `Quick test_json_reader ] );
      ( "stats",
        [ Alcotest.test_case "empty render" `Quick test_stats_empty_render;
          Alcotest.test_case "percentile" `Quick test_stats_percentile ] );
      ( "trace",
        [ Alcotest.test_case "observer lifecycle" `Quick test_trace_observers ] ) ]
