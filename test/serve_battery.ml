(* Served-traffic chaos battery: the full robustness matrix driven against
   a live sharded key-value service under >= 1000 concurrent client
   connections (the acceptance floor — every scenario here keeps at least
   that many).

   Every scenario asserts the exactly-once contract from the client's side:
   each of the n_conns * reqs_per_conn requests completes exactly once
   (completed == issued == expected), zero duplicate responses are observed
   despite timeouts and same-id retries, nothing is left in flight, the
   per-shard service digests are non-zero, and no netfilter rule leaks.

   The battery is deliberately heavyweight (each scenario simulates a few
   thousand requests across ~1000 sockets) so it runs under its own opt-in
   alias:

       dune build @serve                 # default 2-seed sweep
       SERVE_SEEDS=5 dune build @serve   # wider sweep

   A fast smoke version of the same pipeline lives in test_apps.ml and runs
   under plain `dune runtest`. *)

module Simtime = Zapc_sim.Simtime
module Fabric = Zapc_simnet.Fabric
module Netfilter = Zapc_simnet.Netfilter
module Pod = Zapc_pod.Pod
module Cluster = Zapc.Cluster
module Periodic = Zapc.Periodic
module Supervisor = Zapc.Supervisor
module Manager = Zapc.Manager
module Metrics = Zapc_obs.Metrics
module Faultsim = Zapc_faultsim.Faultsim
module Serve = Zapc_apps.Serve

let fail fmt = Fmt.kstr (fun m -> Alcotest.fail m) fmt

let n_seeds () =
  match Sys.getenv_opt "SERVE_SEEDS" with
  | Some s -> (try Stdlib.max 1 (int_of_string s) with _ -> 2)
  | None -> 2

(* Every chaos scenario runs the acceptance-floor population: 1000
   concurrent connections.  The per-connection quota is kept small so a
   scenario stays in the tens of virtual seconds. *)
let battery_cfg =
  { Serve.default_cfg with
    n_conns = 1000;
    reqs_per_conn = 3;
    period = Simtime.ms 60;
    req_timeout = Simtime.ms 150 }

(* The exactly-once postcondition, checked at the end of every scenario. *)
let assert_served t ~ctx =
  let s = Serve.client_stats t in
  let expected = Serve.total_expected t in
  if s.Serve.st_issued <> expected then
    fail "%s: issued %d <> expected %d" ctx s.st_issued expected;
  if s.st_completed <> expected then
    fail "%s: completed %d <> expected %d (lost responses)" ctx s.st_completed expected;
  if s.st_dups <> 0 then fail "%s: %d duplicate responses" ctx s.st_dups;
  if s.st_inflight <> 0 then fail "%s: %d requests still in flight" ctx s.st_inflight;
  for shard = 0 to t.Serve.cfg.nshards - 1 do
    if Serve.digest t ~shard = 0 then fail "%s: shard %d digest is zero" ctx shard
  done;
  let nf = Fabric.netfilter (Cluster.fabric t.Serve.cluster) in
  if Netfilter.blocked_count nf <> 0 then
    fail "%s: %d leaked netfilter rule(s)" ctx (Netfilter.blocked_count nf);
  s

let wait_done t =
  try Serve.wait_done ~timeout:(Simtime.sec 300.0) t
  with Cluster.Timeout _ ->
    let s = Serve.client_stats t in
    fail "service never drained: completed %d/%d (tmo=%d reconn=%d infl=%d)"
      s.Serve.st_completed (Serve.total_expected t) s.st_timeouts s.st_reconnects
      s.st_inflight

(* --- scenarios --------------------------------------------------------- *)

(* Crash the node hosting shard 1 in the middle of the request burst while
   periodic checkpoints run; the supervisor must detect it and restore the
   pod from the last epoch without any manual call, and every client
   request must still complete exactly once. *)
let test_crash_during_burst () =
  let t = Serve.setup ~nodes:5 ~seed:11 ~cfg:battery_cfg () in
  let cluster = t.Serve.cluster in
  let per =
    Periodic.start cluster ~pods:t.Serve.servers ~prefix:"serve" ~period:(Simtime.ms 80)
      ~keep:2 ()
  in
  (* the crash needs an epoch to recover from *)
  Cluster.run_until cluster ~timeout:(Simtime.sec 30.0) (fun () -> Periodic.last_good per >= 1);
  let fs = Faultsim.create cluster in
  let sup = Supervisor.start ~trace:(Faultsim.trace fs) cluster per in
  Faultsim.install fs
    { Faultsim.fault = Faultsim.Crash_node { node = 1 };
      trigger = Faultsim.After (Simtime.ms 30) };
  Cluster.run_until cluster ~timeout:(Simtime.sec 60.0) (fun () ->
      Supervisor.recoveries sup >= 1 || Supervisor.gave_up sup);
  if Supervisor.gave_up sup then fail "supervisor gave up";
  if Supervisor.recoveries sup < 1 then fail "no recovery happened";
  wait_done t;
  Supervisor.stop sup;
  Periodic.stop per;
  let s = assert_served t ~ctx:"crash-during-burst" in
  (* the crash severs live connections: clients MUST have noticed *)
  if s.Serve.st_timeouts = 0 && s.st_eofs = 0 then
    fail "crash was invisible to clients (no timeouts, no EOFs)"

(* Live-migrate the loaded shard-0 pod at peak in-flight load.  Established
   client connections ride through the pre-copy rounds; the blackout shows
   up as latency, never as a lost or duplicated response. *)
let test_migrate_under_peak_load () =
  let t = Serve.setup ~nodes:4 ~seed:12 ~cfg:battery_cfg () in
  let cluster = t.Serve.cluster in
  Cluster.run cluster ~until:(Simtime.ms 100) ();
  let p0 = List.hd t.Serve.servers in
  let r = Cluster.migrate_sync cluster ~pod:p0 ~dest_node:3 in
  if not r.Manager.r_ok then fail "migration failed: %s" r.r_detail;
  wait_done t;
  (match Pod.find p0.Pod.pod_id with
   | None -> fail "migrated pod vanished"
   | Some p ->
     (match Fabric.node_of_ip (Cluster.fabric cluster) p.Pod.rip with
      | Some 3 -> ()
      | n -> fail "pod landed on node %d, wanted 3" (Option.value n ~default:(-1))));
  ignore (assert_served t ~ctx:"migrate-under-peak-load")

(* Storage dies mid-epoch: the checkpoint aborts cleanly, service traffic
   never notices, and the next epoch after the outage heals succeeds. *)
let test_storage_outage_during_epoch () =
  let t = Serve.setup ~nodes:4 ~seed:13 ~cfg:battery_cfg () in
  let cluster = t.Serve.cluster in
  let per =
    Periodic.start cluster ~pods:t.Serve.servers ~prefix:"serve" ~period:(Simtime.ms 60)
      ~keep:2 ()
  in
  let fs = Faultsim.create cluster in
  Faultsim.install fs
    { Faultsim.fault = Faultsim.Storage_outage { duration = Some (Simtime.ms 120) };
      trigger = Faultsim.After (Simtime.ms 70) };
  wait_done t;
  if Faultsim.fired fs = [] then fail "storage outage never fired";
  let g = Periodic.last_good per in
  (* epochs must make progress after the outage heals *)
  (try
     Cluster.run_until cluster ~timeout:(Simtime.sec 10.0) (fun () ->
         Periodic.last_good per > g)
   with Cluster.Timeout _ -> fail "no successful epoch after the storage outage");
  Periodic.stop per;
  (* stop only flags the service: an epoch already in flight (pods
     suspended, netfilter rules up) finishes on its own — drain it before
     asserting quiescence *)
  let now_ms = Cluster.now cluster / 1_000_000 in
  Cluster.run cluster ~until:(Simtime.ms (now_ms + 300)) ();
  ignore (assert_served t ~ctx:"storage-outage-during-epoch")

(* Netfilter silently eats everything to and from shard 0 for ~200 ms in
   the middle of the response stream — longer than the request timeout, so
   clients time out, back off, retry the same ids, and must still end with
   exactly-once delivery once the rules are removed. *)
let test_netfilter_break_mid_response () =
  let t = Serve.setup ~nodes:4 ~seed:14 ~cfg:battery_cfg () in
  let cluster = t.Serve.cluster in
  Cluster.run cluster ~until:(Simtime.ms 90) ();
  let p0 = List.hd t.Serve.servers in
  let nf = Fabric.netfilter (Cluster.fabric cluster) in
  Netfilter.block nf p0.Pod.rip;
  Netfilter.block nf p0.Pod.vip;
  Cluster.run cluster ~until:(Simtime.ms 290) ();
  Netfilter.unblock nf p0.Pod.rip;
  Netfilter.unblock nf p0.Pod.vip;
  wait_done t;
  let s = assert_served t ~ctx:"netfilter-break-mid-response" in
  if s.Serve.st_timeouts = 0 then fail "block outlasted the request timeout yet nothing timed out";
  if s.st_retries = 0 then fail "timeouts without retries"

(* Byte-identical restore: quiesce the service (all quotas served), suspend
   it with a full checkpoint, digest the frozen state, restart on different
   nodes, and require the restored digest to match bit for bit. *)
let test_state_fidelity_across_restore () =
  let cfg = { battery_cfg with reqs_per_conn = 2 } in
  let t = Serve.setup ~nodes:4 ~seed:15 ~cfg () in
  let cluster = t.Serve.cluster in
  wait_done t;
  (* the service is quiesced (every quota served), so digesting here equals
     digesting at suspend time; a [resume:false] checkpoint destroys the
     pods, so the digest must be taken before it *)
  let digests t = List.init t.Serve.cfg.nshards (fun s -> Serve.digest t ~shard:s) in
  let before = digests t in
  List.iter (fun d -> if d = 0 then fail "quiesced digest is zero") before;
  let items = Serve.ckpt_items t ~prefix:"fidelity" in
  let r = Cluster.checkpoint_sync cluster ~items ~resume:false in
  if not r.Manager.r_ok then fail "suspend checkpoint failed: %s" r.r_detail;
  List.iter
    (fun (p : Pod.t) ->
      if Pod.find p.pod_id <> None then fail "suspended pod survived the checkpoint")
    t.Serve.servers;
  let r2 =
    Cluster.restart_app cluster
      ~pod_ids:(List.map (fun (p : Pod.t) -> p.pod_id) t.Serve.servers)
      ~target_nodes:[ 2; 3 ] ~key_prefix:"fidelity"
  in
  if not r2.Manager.r_ok then fail "restart failed: %s" r2.r_detail;
  let after = digests t in
  if before <> after then
    fail "service state changed across restore: %s -> %s"
      (String.concat "," (List.map (Printf.sprintf "%x") before))
      (String.concat "," (List.map (Printf.sprintf "%x") after))

(* Satellite regression: connections that were SYN-queued (half-open,
   sitting in a listener's accept pipeline) when the checkpoint froze the
   pod must survive the restore.  A fat one-way latency stretches the
   handshake so the 1000-connection connect storm straddles the suspend;
   the restored listeners re-emit SYN+ACK from the reconstructed SYN queue
   and the storm completes against the restored pods. *)
let test_syn_queue_across_restore () =
  let cfg = { battery_cfg with reqs_per_conn = 2 } in
  let t = Serve.setup ~nodes:4 ~seed:16 ~cfg () in
  let cluster = t.Serve.cluster in
  Fabric.set_latency (Cluster.fabric cluster) (Simtime.ms 10);
  (* the connect storm's SYNs land on the listeners from ~13 ms (client
     spawn at 1 ms + one-way latency) and the third handshake legs drain
     them from ~31 ms: suspend in the middle, with hundreds of half-open
     children sitting on the SYN queues *)
  Cluster.run cluster ~until:(Simtime.ms 20) ();
  let items = Serve.ckpt_items t ~prefix:"synq" in
  let r = Cluster.checkpoint_sync cluster ~items ~resume:false in
  if not r.Manager.r_ok then fail "suspend checkpoint failed: %s" r.r_detail;
  let r2 =
    Cluster.restart_app cluster
      ~pod_ids:(List.map (fun (p : Pod.t) -> p.pod_id) t.Serve.servers)
      ~target_nodes:[ 2; 3 ] ~key_prefix:"synq"
  in
  if not r2.Manager.r_ok then fail "restart failed: %s" r2.r_detail;
  let restored = Metrics.counter (Cluster.metrics cluster) "net.synq_restored" in
  if restored < 1 then fail "checkpoint caught no SYN-queued connection (counter=0)";
  Fabric.set_latency (Cluster.fabric cluster) (Simtime.us 40);
  wait_done t;
  ignore (assert_served t ~ctx:"syn-queue-across-restore")

(* --- seed sweep + determinism ------------------------------------------ *)

(* One compact end-to-end scenario (checkpoint under load, then migrate)
   reduced to a digest string: final counters plus per-shard state hashes.
   The same seed must reproduce it bit for bit. *)
let scenario_digest seed =
  let cfg = { battery_cfg with reqs_per_conn = 2 } in
  let t = Serve.setup ~nodes:4 ~seed ~cfg () in
  let cluster = t.Serve.cluster in
  Cluster.run cluster ~until:(Simtime.ms 80) ();
  let r =
    Cluster.snapshot cluster ~pods:t.Serve.servers ~key_prefix:(Printf.sprintf "sw%d" seed)
  in
  if not r.Manager.r_ok then fail "seed %d: snapshot failed: %s" seed r.r_detail;
  let p0 = List.hd t.Serve.servers in
  let m = Cluster.migrate_sync cluster ~pod:p0 ~dest_node:3 in
  if not m.Manager.r_ok then fail "seed %d: migration failed: %s" seed m.r_detail;
  wait_done t;
  let s = assert_served t ~ctx:(Printf.sprintf "seed %d" seed) in
  Printf.sprintf "c=%d r=%d tmo=%d redir=%d d0=%x d1=%x now=%d" s.Serve.st_completed
    s.st_retries s.st_timeouts s.st_redirects (Serve.digest t ~shard:0)
    (Serve.digest t ~shard:1)
    (Cluster.now cluster)

let test_seed_sweep () =
  for i = 0 to n_seeds () - 1 do
    ignore (scenario_digest (100 + (17 * i)))
  done

let test_determinism () =
  let a = scenario_digest 100 in
  let b = scenario_digest 100 in
  if a <> b then fail "same seed, different run:\n  %s\n  %s" a b

let () =
  Alcotest.run "serve"
    [ ( "battery",
        [ Alcotest.test_case "crash during burst" `Slow test_crash_during_burst;
          Alcotest.test_case "migrate under peak load" `Slow test_migrate_under_peak_load;
          Alcotest.test_case "storage outage during epoch" `Slow
            test_storage_outage_during_epoch;
          Alcotest.test_case "netfilter break mid-response" `Slow
            test_netfilter_break_mid_response;
          Alcotest.test_case "state fidelity across restore" `Slow
            test_state_fidelity_across_restore;
          Alcotest.test_case "SYN queue across restore" `Slow
            test_syn_queue_across_restore ] );
      ( "seeds",
        [ Alcotest.test_case "seed sweep" `Slow test_seed_sweep;
          Alcotest.test_case "determinism" `Slow test_determinism ] ) ]
