(* Unit and property tests for the portable checkpoint format. *)

module Value = Zapc_codec.Value
module Wire = Zapc_codec.Wire

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let roundtrip v = Wire.decode (Wire.encode v)

let test_scalars () =
  List.iter
    (fun v -> check tbool "roundtrip" true (Value.equal v (roundtrip v)))
    [ Value.Unit; Value.Bool true; Value.Bool false; Value.Int 0; Value.Int 1;
      Value.Int (-1); Value.Int max_int; Value.Int min_int; Value.Int 126; Value.Int 127;
      Value.Float 0.0; Value.Float (-1.5); Value.Float Float.pi; Value.Float nan;
      Value.Str ""; Value.Str "hello"; Value.Str (String.make 10000 'x') ]

let test_nan_roundtrip () =
  match roundtrip (Value.Float nan) with
  | Value.Float f -> check tbool "nan" true (Float.is_nan f)
  | _ -> Alcotest.fail "not a float"

let test_composites () =
  let v =
    Value.assoc
      [ ("a", Value.List [ Value.Int 1; Value.Str "x"; Value.Unit ]);
        ("b", Value.Tag ("variant", Value.Bool true));
        ("c", Value.F64s [| 1.0; -2.5; 3e40 |]);
        ("d", Value.Assoc [ ("nested", Value.List []) ]) ]
  in
  check tbool "roundtrip" true (Value.equal v (roundtrip v))

let test_deep_nesting () =
  let rec build n acc = if n = 0 then acc else build (n - 1) (Value.List [ acc ]) in
  let v = build 500 (Value.Int 42) in
  check tbool "deep" true (Value.equal v (roundtrip v))

let test_bad_magic () =
  Alcotest.check_raises "bad magic" (Value.Decode_error "bad magic") (fun () ->
      ignore (Wire.decode "XXXX\002\000"))

let test_version_mismatch () =
  let s = Wire.encode Value.Unit in
  let s = String.sub s 0 4 ^ "\255" ^ String.sub s 5 (String.length s - 5) in
  match Wire.decode s with
  | exception Value.Decode_error _ -> ()
  | _ -> Alcotest.fail "expected version mismatch"

let test_truncation () =
  let s = Wire.encode (Value.Str "hello world, a longer string") in
  for cut = 5 to String.length s - 1 do
    match Wire.decode (String.sub s 0 cut) with
    | exception Value.Decode_error _ -> ()
    | _ -> Alcotest.failf "truncation at %d not detected" cut
  done

let test_trailing_garbage () =
  let s = Wire.encode Value.Unit ^ "junk" in
  match Wire.decode s with
  | exception Value.Decode_error _ -> ()
  | _ -> Alcotest.fail "trailing garbage not detected"

let test_field_access () =
  let v = Value.assoc [ ("x", Value.Int 1); ("y", Value.Str "s") ] in
  check tint "field x" 1 (Value.to_int (Value.field "x" v));
  check tstr "field y" "s" (Value.to_str (Value.field "y" v));
  check tbool "field_opt none" true (Value.field_opt "z" v = None);
  Alcotest.check_raises "missing field" (Value.Decode_error "missing field z") (fun () ->
      ignore (Value.field "z" v))

let test_option_pair () =
  let v = Value.option Value.int (Some 3) in
  check tbool "some" true (Value.to_option Value.to_int v = Some 3);
  let v = Value.option Value.int None in
  check tbool "none" true (Value.to_option Value.to_int v = None);
  let v = Value.pair Value.int Value.str (7, "z") in
  check tbool "pair" true (Value.to_pair Value.to_int Value.to_str v = (7, "z"))

let test_encoded_size () =
  let v = Value.Str (String.make 100 'a') in
  let sz = Wire.encoded_size v in
  check tint "encoded size" (String.length (Wire.encode v) - 5) sz

let test_smallint_boundary () =
  (* 0..126 use the inline encoding; make sure the boundary is exact *)
  List.iter
    (fun n ->
      match roundtrip (Value.Int n) with
      | Value.Int n' -> check tint "int" n n'
      | _ -> Alcotest.fail "not an int")
    [ 0; 1; 125; 126; 127; 128; 255; 16384 ]

(* --- properties --- *)

module Protocol = Zapc.Protocol
module Meta = Zapc_netckpt.Meta
module Image = Zapc_ckpt.Image
module Addr = Zapc_simnet.Addr
module Kv_wire = Zapc_apps.Kv_wire

let value_gen =
  let open QCheck.Gen in
  sized (fun size ->
      fix
        (fun self n ->
          let leaf =
            oneof
              [ return Value.Unit;
                map (fun b -> Value.Bool b) bool;
                map (fun i -> Value.Int i) int;
                map (fun f -> Value.Float f) float;
                map (fun s -> Value.Str s) string_small;
                map (fun l -> Value.F64s (Array.of_list l)) (small_list float) ]
          in
          if n <= 0 then leaf
          else
            oneof
              [ leaf;
                map (fun l -> Value.List l) (list_size (int_bound 4) (self (n / 2)));
                map
                  (fun l -> Value.Assoc l)
                  (list_size (int_bound 4)
                     (pair string_small (self (n / 2))));
                map2 (fun s v -> Value.Tag (s, v)) string_small (self (n / 2)) ])
        (min size 6))

let arbitrary_value = QCheck.make value_gen

let prop_roundtrip =
  QCheck.Test.make ~name:"wire roundtrip is identity" ~count:500 arbitrary_value (fun v ->
      Value.equal v (roundtrip v))

let prop_size =
  QCheck.Test.make ~name:"encoded_size matches encode" ~count:200 arbitrary_value
    (fun v -> Wire.encoded_size v = String.length (Wire.encode v) - 5)

let prop_estimate_upper =
  QCheck.Test.make ~name:"size_estimate bounds encoded size" ~count:200 arbitrary_value
    (fun v -> Wire.encoded_size v <= Value.size_estimate v + 8)

(* fuzz: the decoder must reject arbitrary bytes with Decode_error, never
   crash or loop (checkpoint images may be corrupted in transit) *)
let prop_decode_never_crashes =
  QCheck.Test.make ~name:"decoder total on arbitrary bytes" ~count:500
    QCheck.(string_of_size Gen.(int_bound 200))
    (fun junk ->
      match Wire.decode junk with
      | _ -> true
      | exception Value.Decode_error _ -> true)

(* fuzz: bit-flipping a valid image either decodes (flip hit a payload
   byte) or raises Decode_error — nothing else *)
let prop_bitflip_safe =
  QCheck.Test.make ~name:"bit flips are detected or benign" ~count:300
    QCheck.(pair arbitrary_value (pair small_nat small_nat))
    (fun (v, (pos, bit)) ->
      let s = Bytes.of_string (Wire.encode v) in
      let pos = pos mod Bytes.length s in
      Bytes.set s pos (Char.chr (Char.code (Bytes.get s pos) lxor (1 lsl (bit mod 8))));
      match Wire.decode (Bytes.to_string s) with
      | _ -> true
      | exception Value.Decode_error _ -> true)

(* --- protocol message and image-section roundtrips ---------------------
   The wire protocol between Manager and Agents, and the pod-image sections
   the checkpointer stores, must survive encode/decode for arbitrary
   (seeded-random) contents — these are the bytes a restart on a different
   node has to make sense of. *)

let ip_gen =
  QCheck.Gen.map
    (fun n -> Addr.make_ip 10 77 ((n lsr 8) land 0xff) (n land 0xff))
    (QCheck.Gen.int_bound 65535)

let addr_gen =
  QCheck.Gen.map2 (fun ip port -> { Addr.ip; port }) ip_gen (QCheck.Gen.int_range 1 65535)

let conn_state_gen =
  QCheck.Gen.oneofl
    [ Meta.Full; Meta.Half_out; Meta.Half_in; Meta.Closed_data; Meta.Connecting ]

let role_gen = QCheck.Gen.oneofl [ Meta.Accept; Meta.Connect ]

let entry_gen =
  let open QCheck.Gen in
  map
    (fun (((local, remote), (state, role)), ((sent, recv), (acked, sock_ref))) ->
      { Meta.local; remote; state; role; sent; recv; acked; sock_ref })
    (pair
       (pair (pair addr_gen addr_gen) (pair conn_state_gen role_gen))
       (pair (pair nat nat) (pair nat (int_bound 32))))

let pod_meta_gen =
  let open QCheck.Gen in
  map
    (fun ((pm_pod, pm_vip), pm_entries) -> { Meta.pm_pod; pm_vip; pm_entries })
    (pair (pair (int_bound 1000) ip_gen) (list_size (int_bound 5) entry_gen))

let restart_entry_gen =
  let open QCheck.Gen in
  map
    (fun (((ri_local, ri_remote), (ri_role, ri_state)),
          ((ri_sock_ref, ri_peer_recv), ri_orphan)) ->
      { Meta.ri_local; ri_remote; ri_role; ri_state; ri_sock_ref; ri_peer_recv;
        ri_orphan })
    (pair
       (pair (pair addr_gen addr_gen) (pair role_gen conn_state_gen))
       (pair (pair (int_bound 32) nat) bool))

let uri_gen =
  let open QCheck.Gen in
  oneof
    [ map (fun s -> Protocol.U_storage s) string_small;
      map (fun n -> Protocol.U_node n) (int_bound 16) ]

let stats_gen =
  let open QCheck.Gen in
  map
    (fun ((st_net_time, st_local_time), (st_conn_time, st_image_bytes),
          ((st_full_bytes, st_net_bytes), (st_sockets, st_procs))) ->
      { Protocol.st_net_time; st_local_time; st_conn_time; st_image_bytes;
        st_full_bytes; st_net_bytes; st_sockets; st_procs })
    (triple (pair nat nat) (pair nat nat) (pair (pair nat nat) (pair nat nat)))

let ctx_gen =
  let open QCheck.Gen in
  oneof
    [ return None;
      map
        (fun (tc_op, tc_parent) -> Some { Protocol.tc_op; tc_parent })
        (pair nat nat) ]

let to_agent_gen =
  let open QCheck.Gen in
  oneof
    [ map
        (fun (((pod_id, dest), (resume, incremental)), ctx) ->
          Protocol.A_checkpoint { pod_id; dest; resume; incremental; ctx })
        (pair (pair (pair nat uri_gen) (pair bool bool)) ctx_gen);
      map (fun pod_id -> Protocol.A_continue { pod_id }) nat;
      map (fun pod_id -> Protocol.A_abort { pod_id }) nat;
      map
        (fun ((((pod_id, name), (vip, rip)),
               ((uri, entries), (vip_map, (extra_altq, skip_sendq)))), ctx) ->
          Protocol.A_restart
            { pod_id; name; vip; rip; uri; entries; vip_map; extra_altq; skip_sendq;
              ctx })
        (pair
           (pair
              (pair (pair nat string_small) (pair ip_gen ip_gen))
              (pair
                 (pair uri_gen (list_size (int_bound 4) restart_entry_gen))
                 (pair
                    (list_size (int_bound 4) (pair ip_gen ip_gen))
                    (pair (list_size (int_bound 3) (pair (int_bound 32) string_small))
                       bool))))
           ctx_gen);
      map (fun seq -> Protocol.A_ping { seq }) nat;
      map
        (fun (((pod_id, dest), (max_rounds, dirty_threshold)), ctx) ->
          Protocol.A_migrate { pod_id; dest; max_rounds; dirty_threshold; ctx })
        (pair
           (pair (pair nat (int_bound 16))
              (pair (int_bound 32)
                 (* exact binary fractions so float equality is trustworthy *)
                 (map (fun n -> float_of_int n /. 256.0) (int_bound 256))))
           ctx_gen) ]

let mig_round_stats_gen =
  let open QCheck.Gen in
  map
    (fun ((mg_round, mg_bytes), (mg_dirty, mg_duration)) ->
      { Protocol.mg_round; mg_bytes; mg_dirty; mg_duration })
    (pair (pair (int_bound 32) nat) (pair nat nat))

let to_manager_gen =
  let open QCheck.Gen in
  oneof
    [ map
        (fun ((node, pod_id), (meta, meta_bytes)) ->
          Protocol.M_meta { node; pod_id; meta; meta_bytes })
        (pair (pair nat nat) (pair pod_meta_gen nat));
      map
        (fun ((node, pod_id), ((ok, detail), stats)) ->
          Protocol.M_done { node; pod_id; ok; detail; stats })
        (pair (pair nat nat) (pair (pair bool string_small) stats_gen));
      map (fun (node, seq) -> Protocol.M_pong { node; seq }) (pair nat nat);
      map
        (fun ((node, pod_id), stats) ->
          Protocol.M_migrate_round { node; pod_id; stats })
        (pair (pair nat nat) mig_round_stats_gen);
      map
        (fun ((node, pod_id), ((rounds, precopy_bytes), forced)) ->
          Protocol.M_migrate_done { node; pod_id; rounds; precopy_bytes; forced })
        (pair (pair nat nat) (pair (pair (int_bound 32) nat) bool)) ]

let prop_protocol_agent_roundtrip =
  QCheck.Test.make ~name:"Manager->Agent messages roundtrip" ~count:300
    (QCheck.make to_agent_gen) (fun m ->
      Protocol.to_agent_of_value (roundtrip (Protocol.to_agent_to_value m)) = m)

(* backward compatibility: frames from encoders that predate the trace
   context (or were written with tracing off) carry no "ctx" entry at all;
   they must decode to the same message with [ctx = None], not fail *)
let strip_ctx v =
  match v with
  | Value.Tag (tag, Value.Assoc fields) ->
    Value.Tag (tag, Value.Assoc (List.filter (fun (k, _) -> k <> "ctx") fields))
  | v -> v

let drop_ctx (m : Protocol.to_agent) =
  match m with
  | Protocol.A_checkpoint r -> Protocol.A_checkpoint { r with ctx = None }
  | Protocol.A_restart r -> Protocol.A_restart { r with ctx = None }
  | Protocol.A_migrate r -> Protocol.A_migrate { r with ctx = None }
  | (Protocol.A_continue _ | Protocol.A_abort _ | Protocol.A_ping _) as m -> m
  | Protocol.A_batch _ as m -> m  (* generator never nests batches *)

let prop_protocol_agent_no_ctx_decodes =
  QCheck.Test.make ~name:"frames without trace ctx decode to None" ~count:300
    (QCheck.make to_agent_gen) (fun m ->
      Protocol.to_agent_of_value (roundtrip (strip_ctx (Protocol.to_agent_to_value m)))
      = drop_ctx m)

let prop_protocol_manager_roundtrip =
  QCheck.Test.make ~name:"Agent->Manager messages roundtrip" ~count:300
    (QCheck.make to_manager_gen) (fun m ->
      Protocol.to_manager_of_value (roundtrip (Protocol.to_manager_to_value m)) = m)

(* the tree-coordination bundles: an addressed command batch down an edge
   and an aggregated report batch (plus the subtree-loss notice) up one *)
let agent_batch_gen =
  let open QCheck.Gen in
  map (fun items -> Protocol.A_batch items)
    (list_size (int_bound 5) (pair nat to_agent_gen))

let manager_batch_gen =
  let open QCheck.Gen in
  oneof
    [ map (fun items -> Protocol.M_batch items)
        (list_size (int_bound 5) to_manager_gen);
      map (fun node -> Protocol.M_subtree_down { node }) nat ]

let prop_agent_batch_roundtrip =
  QCheck.Test.make ~name:"command batches roundtrip" ~count:300
    (QCheck.make agent_batch_gen) (fun m ->
      Protocol.to_agent_of_value (roundtrip (Protocol.to_agent_to_value m)) = m)

let prop_manager_batch_roundtrip =
  QCheck.Test.make ~name:"report batches + subtree_down roundtrip" ~count:300
    (QCheck.make manager_batch_gen) (fun m ->
      Protocol.to_manager_of_value (roundtrip (Protocol.to_manager_to_value m)) = m)

let prop_mig_round_stats_roundtrip =
  QCheck.Test.make ~name:"migration round stats roundtrip" ~count:300
    (QCheck.make mig_round_stats_gen) (fun s ->
      Protocol.mig_round_stats_of_value
        (roundtrip (Protocol.mig_round_stats_to_value s))
      = s)

(* a pod image: the three required header fields plus arbitrary extra
   sections; Image serialization must preserve every section verbatim *)
let pod_image_gen =
  let open QCheck.Gen in
  map
    (fun ((pod_id, name), (mem, extra)) ->
      Value.Assoc
        ([ ("pod_id", Value.Int pod_id); ("name", Value.Str name);
           ("memory_bytes", Value.Int mem) ]
        @ List.mapi (fun i v -> (Printf.sprintf "sec%d" i, v)) extra))
    (pair (pair nat string_small) (pair nat (list_size (int_bound 4) value_gen)))

let prop_image_sections_roundtrip =
  QCheck.Test.make ~name:"pod image sections roundtrip" ~count:300
    (QCheck.make pod_image_gen) (fun v ->
      let img = Image.of_pod_image v in
      Value.equal v (Image.to_pod_image img)
      && img.Image.pod_id = Value.to_int (Value.field "pod_id" v)
      && String.equal img.Image.name (Value.to_str (Value.field "name" v)))

(* the storage integrity checksum: deterministic for the same image, and
   any single-byte mutation of the encoded payload changes it *)
let prop_image_checksum_detects_bitflips =
  QCheck.Test.make ~name:"image checksum detects single-byte corruption" ~count:300
    (QCheck.make (QCheck.Gen.pair pod_image_gen (QCheck.Gen.int_bound 10_000)))
    (fun (v, pos) ->
      let img = Image.of_pod_image v in
      let sum = Image.checksum img in
      sum = Image.checksum img
      &&
      let n = String.length img.Image.encoded in
      if n = 0 then true
      else begin
        let i = pos mod n in
        let b = Bytes.of_string img.Image.encoded in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
        Image.checksum { img with Image.encoded = Bytes.to_string b } <> sum
      end)

(* --- key-value service wire protocol -----------------------------------
   The request/response/redirect/replication messages of the served-traffic
   battery and their length-prefixed framing: a retried request is only
   idempotent if the bytes a server logs and re-sends survive the codec
   bit for bit, and a checkpoint can cut the TCP stream at ANY byte — the
   framing must reassemble from an arbitrary split. *)

let kv_op_gen =
  let open QCheck.Gen in
  oneof
    [ map (fun (k, v) -> Kv_wire.Set (k, v)) (pair string_small string_small);
      map (fun k -> Kv_wire.Get k) string_small;
      map (fun k -> Kv_wire.Del k) string_small ]

let kv_status_gen =
  let open QCheck.Gen in
  oneof
    [ return Kv_wire.S_ok;
      return Kv_wire.S_not_found;
      map (fun o -> Kv_wire.S_redirect o) (int_bound 15) ]

let kv_msg_gen =
  let open QCheck.Gen in
  oneof
    [ map
        (fun ((rq_client, rq_id), rq_op) -> Kv_wire.Req { rq_client; rq_id; rq_op })
        (pair (pair nat nat) kv_op_gen);
      map
        (fun (((rs_client, rs_id), rs_status), rs_value) ->
          Kv_wire.Resp { rs_client; rs_id; rs_status; rs_value })
        (pair (pair (pair nat nat) kv_status_gen) string_small);
      map
        (fun ((rp_seq, (rp_client, rp_id)), rp_op) ->
          Kv_wire.Repl { rp_seq; rp_client; rp_id; rp_op })
        (pair (pair nat (pair nat nat)) kv_op_gen);
      map (fun s -> Kv_wire.Repl_ack s) nat ]

let prop_kv_msg_roundtrip =
  QCheck.Test.make ~name:"kv messages roundtrip" ~count:300
    (QCheck.make kv_msg_gen) (fun m ->
      Kv_wire.msg_of_value (roundtrip (Kv_wire.msg_to_value m)) = m)

(* cut a framed stream at an arbitrary byte: the head parses to a prefix of
   the messages, the tail carried over plus the remainder parses to the
   rest, and nothing is left — exactly what a restored connection buffer
   must guarantee *)
let prop_kv_frame_split =
  QCheck.Test.make ~name:"kv framing reassembles at any cut" ~count:300
    (QCheck.make QCheck.Gen.(pair (list_size (int_bound 6) kv_msg_gen) nat))
    (fun (msgs, cut) ->
      let s = String.concat "" (List.map Kv_wire.frame msgs) in
      let cut = if String.length s = 0 then 0 else cut mod (String.length s + 1) in
      let head, tail = Kv_wire.split (String.sub s 0 cut) in
      let more, rest =
        Kv_wire.split (tail ^ String.sub s cut (String.length s - cut))
      in
      head @ more = msgs && String.equal rest "")

let prop_kv_owner_stable =
  QCheck.Test.make ~name:"kv shard owner is stable and in range" ~count:300
    (QCheck.make QCheck.Gen.(pair string_small (int_range 1 8)))
    (fun (key, nshards) ->
      let o = Kv_wire.owner ~nshards key in
      o >= 0 && o < nshards && o = Kv_wire.owner ~nshards key)

let () =
  Alcotest.run "codec"
    [ ( "wire",
        [ Alcotest.test_case "scalars" `Quick test_scalars;
          Alcotest.test_case "nan" `Quick test_nan_roundtrip;
          Alcotest.test_case "composites" `Quick test_composites;
          Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "version mismatch" `Quick test_version_mismatch;
          Alcotest.test_case "truncation" `Quick test_truncation;
          Alcotest.test_case "trailing garbage" `Quick test_trailing_garbage;
          Alcotest.test_case "smallint boundary" `Quick test_smallint_boundary ] );
      ( "value",
        [ Alcotest.test_case "field access" `Quick test_field_access;
          Alcotest.test_case "option/pair" `Quick test_option_pair;
          Alcotest.test_case "encoded size" `Quick test_encoded_size ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_size; prop_estimate_upper; prop_decode_never_crashes;
            prop_bitflip_safe ] );
      ( "protocol",
        List.map QCheck_alcotest.to_alcotest
          [ prop_protocol_agent_roundtrip; prop_protocol_agent_no_ctx_decodes;
            prop_protocol_manager_roundtrip;
            prop_agent_batch_roundtrip; prop_manager_batch_roundtrip;
            prop_mig_round_stats_roundtrip; prop_image_sections_roundtrip;
            prop_image_checksum_detects_bitflips ] );
      ( "kv wire",
        List.map QCheck_alcotest.to_alcotest
          [ prop_kv_msg_roundtrip; prop_kv_frame_split; prop_kv_owner_stable ] ) ]
