(* End-to-end tests of the coordinated checkpoint-restart protocol:
   snapshots of running distributed applications, restarts on the same and
   on different nodes, direct migration streaming, ring topologies
   (deadlock-free connection recovery), UDP semantics across checkpoints,
   failure handling, and the protocol's timing structure. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Value = Zapc_codec.Value
module Addr = Zapc_simnet.Addr
module Socket = Zapc_simnet.Socket
module Kernel = Zapc_simos.Kernel
module Proc = Zapc_simos.Proc
module Program = Zapc_simos.Program
module Syscall = Zapc_simos.Syscall
module Pod = Zapc_pod.Pod
module Cluster = Zapc.Cluster
module Manager = Zapc.Manager
module Protocol = Zapc.Protocol
module Params = Zapc.Params
module Launch = Zapc_msg.Launch
module Mpi = Zapc_msg.Mpi

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let logged : string list ref = ref []

let make_cluster ?(params = Params.default) ?(nodes = 4) ?(cpus = 1) ?(seed = 42) () =
  Zapc_apps.Registry.register_all ();
  let cluster = Cluster.make ~seed ~cpus ~params ~node_count:nodes () in
  logged := [];
  for i = 0 to nodes - 1 do
    Kernel.set_logger (Cluster.node cluster i).Cluster.n_kernel (fun _ _ m ->
        logged := m :: !logged)
  done;
  cluster

let has_log prefix =
  List.exists
    (fun s -> String.length s >= String.length prefix
              && String.equal (String.sub s 0 (String.length prefix)) prefix)
    !logged

let find_log prefix =
  List.find_opt
    (fun s -> String.length s >= String.length prefix
              && String.equal (String.sub s 0 (String.length prefix)) prefix)
    !logged

(* --- dedicated test programs --- *)

(* Token ring over a CYCLE of TCP connections (each endpoint both connects
   and accepts), the topology the paper uses to motivate the two-task
   connection recovery.  Written against the raw syscall interface. *)
module Ring = struct
  type phase =
    | Listen_sock | Listen_bind | Listen_listen
    | Conn_new | Conn_wait | Conn_close | Conn_sleep
    | Accept_prev
    | Start_token
    | Recv_tok | Fwd_tok of int
    | Done_ring

  type state = {
    rank : int;
    size : int;
    vips : int array;
    port : int;
    limit : int;
    mutable ph : phase;
    mutable lfd : int;
    mutable sendfd : int;  (* to (rank+1) mod size *)
    mutable recvfd : int;  (* from (rank-1+size) mod size *)
    mutable buf : string;
  }

  let name = "test.ring"

  let start args =
    let rank = Value.to_int (Value.field "rank" args) in
    let size = Value.to_int (Value.field "size" args) in
    let vips = Array.of_list (Value.to_list Value.to_int (Value.field "vips" args)) in
    let port = Value.to_int (Value.field "port" args) in
    let limit = Value.to_int (Value.field "limit" args) in
    { rank; size; vips; port; limit; ph = Listen_sock; lfd = -1; sendfd = -1;
      recvfd = -1; buf = "" }

  let u32 n =
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int n);
    Bytes.unsafe_to_string b

  let step s (outcome : Syscall.outcome) =
    let next = s.vips.((s.rank + 1) mod s.size) in
    match (s.ph, outcome) with
    | Listen_sock, _ ->
      s.ph <- Listen_bind;
      (s, Program.Sys (Syscall.Sock_create Socket.Stream))
    | Listen_bind, Syscall.Ret (Syscall.Rint fd) ->
      s.lfd <- fd;
      s.ph <- Listen_listen;
      (s, Program.Sys (Syscall.Bind (fd, { Addr.ip = Addr.any; port = s.port })))
    | Listen_listen, _ ->
      s.ph <- Conn_new;
      (s, Program.Sys (Syscall.Listen (s.lfd, 4)))
    | Conn_new, _ ->
      s.ph <- Conn_wait;
      (s, Program.Sys (Syscall.Sock_create Socket.Stream))
    | Conn_wait, Syscall.Ret (Syscall.Rint fd) ->
      s.sendfd <- fd;
      (s, Program.Sys (Syscall.Connect (fd, { Addr.ip = next; port = s.port })))
    | Conn_wait, Syscall.Ret Syscall.Rnone ->
      s.ph <- Accept_prev;
      (s, Program.Sys (Syscall.Accept s.lfd))
    | Conn_wait, Syscall.Err _ ->
      s.ph <- Conn_close;
      (s, Program.Sys (Syscall.Close s.sendfd))
    | Conn_close, _ ->
      s.ph <- Conn_sleep;
      (s, Program.Sys (Syscall.Nanosleep (Simtime.ms 15)))
    | Conn_sleep, _ ->
      s.ph <- Conn_new;
      (s, Program.Sys Syscall.Getpid)
    | Accept_prev, Syscall.Ret (Syscall.Raccept (fd, _)) ->
      s.recvfd <- fd;
      if s.rank = 0 then begin
        s.ph <- Start_token;
        (s, Program.Sys Syscall.Getpid)
      end
      else begin
        s.ph <- Recv_tok;
        (s, Program.Sys (Syscall.Recv (s.recvfd, 4, Socket.plain_recv)))
      end
    | Start_token, _ ->
      s.ph <- Recv_tok;
      (* fire the first token, then wait for it to come around *)
      (s, Program.Sys (Syscall.Send (s.sendfd, u32 1)))
    | Recv_tok, Syscall.Ret (Syscall.Rint _) ->
      (s, Program.Sys (Syscall.Recv (s.recvfd, 4, Socket.plain_recv)))
    | Recv_tok, Syscall.Ret (Syscall.Rdata "") ->
      (* predecessor closed before the final token reached us *)
      (s, Program.Exit 3)
    | Recv_tok, Syscall.Ret (Syscall.Rdata d) ->
      s.buf <- s.buf ^ d;
      if String.length s.buf >= 4 then begin
        let v = Int32.to_int (String.get_int32_le s.buf 0) in
        s.buf <- String.sub s.buf 4 (String.length s.buf - 4);
        if v >= s.limit + s.size - 1 then begin
          s.ph <- Done_ring;
          (s, Program.Sys (Syscall.Log (Printf.sprintf "ring done v=%d rank=%d" v s.rank)))
        end
        else begin
          (* forward; the Fwd_tok continuation finishes us once the token
             has passed the limit (each rank forwards the final token once,
             so every rank terminates) *)
          s.ph <- Fwd_tok (v + 1);
          (s, Program.Sys (Syscall.Send (s.sendfd, u32 (v + 1))))
        end
      end
      else (s, Program.Sys (Syscall.Recv (s.recvfd, 4, Socket.plain_recv)))
    | Fwd_tok v, _ ->
      if v >= s.limit then begin
        s.ph <- Done_ring;
        (s, Program.Sys (Syscall.Log (Printf.sprintf "ring done v=%d rank=%d" v s.rank)))
      end
      else begin
        s.ph <- Recv_tok;
        (s, Program.Sys (Syscall.Recv (s.recvfd, 4, Socket.plain_recv)))
      end
    | Done_ring, _ -> (s, Program.Exit 0)
    | _, Syscall.Err _ -> (s, Program.Exit 1)
    | _, _ -> (s, Program.Exit 2)

  let phase_to_int = function
    | Listen_sock -> 0 | Listen_bind -> 1 | Listen_listen -> 2 | Conn_new -> 3
    | Conn_wait -> 4 | Conn_close -> 5 | Conn_sleep -> 6 | Accept_prev -> 7
    | Start_token -> 8 | Recv_tok -> 9 | Fwd_tok _ -> 10 | Done_ring -> 11

  let phase_arg = function Fwd_tok v -> v | _ -> 0

  let int_to_phase i arg =
    match i with
    | 0 -> Listen_sock | 1 -> Listen_bind | 2 -> Listen_listen | 3 -> Conn_new
    | 4 -> Conn_wait | 5 -> Conn_close | 6 -> Conn_sleep | 7 -> Accept_prev
    | 8 -> Start_token | 9 -> Recv_tok | 10 -> Fwd_tok arg | _ -> Done_ring

  let to_value s =
    Value.assoc
      [ ("rank", Value.int s.rank); ("size", Value.int s.size);
        ("vips", Value.list Value.int (Array.to_list s.vips));
        ("port", Value.int s.port); ("limit", Value.int s.limit);
        ("ph", Value.int (phase_to_int s.ph)); ("ph_arg", Value.int (phase_arg s.ph));
        ("lfd", Value.int s.lfd); ("sendfd", Value.int s.sendfd);
        ("recvfd", Value.int s.recvfd); ("buf", Value.str s.buf) ]

  let of_value v =
    {
      rank = Value.to_int (Value.field "rank" v);
      size = Value.to_int (Value.field "size" v);
      vips = Array.of_list (Value.to_list Value.to_int (Value.field "vips" v));
      port = Value.to_int (Value.field "port" v);
      limit = Value.to_int (Value.field "limit" v);
      ph = int_to_phase (Value.to_int (Value.field "ph" v)) (Value.to_int (Value.field "ph_arg" v));
      lfd = Value.to_int (Value.field "lfd" v);
      sendfd = Value.to_int (Value.field "sendfd" v);
      recvfd = Value.to_int (Value.field "recvfd" v);
      buf = Value.to_str (Value.field "buf" v);
    }
end

(* UDP chatter: both peers send [count] sequence-numbered datagrams and
   collect whatever arrives; exits after an idle timeout.  Used to check
   the paper's UDP semantics across checkpoints: queued datagrams are
   preserved, in-flight ones may be lost, nothing is ever duplicated. *)
module Udp_chat = struct
  type phase = Mk_sock | Bind_sock | Loop | Closing

  type state = {
    rank : int;
    vips : int array;
    port : int;
    count : int;
    mutable ph : phase;
    mutable fd : int;
    mutable sent : int;
    mutable got : int list;  (* received sequence numbers, newest first *)
    mutable idle : int;
  }

  let name = "test.udp_chat"

  let start args =
    let rank = Value.to_int (Value.field "rank" args) in
    let vips = Array.of_list (Value.to_list Value.to_int (Value.field "vips" args)) in
    let port = Value.to_int (Value.field "port" args) in
    let count = Value.to_int (Value.field "count" args) in
    { rank; vips; port; count; ph = Mk_sock; fd = -1; sent = 0; got = []; idle = 0 }

  let u32 n =
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int n);
    Bytes.unsafe_to_string b

  let peer s = s.vips.(1 - s.rank)

  let step s (outcome : Syscall.outcome) =
    match (s.ph, outcome) with
    | Mk_sock, _ ->
      s.ph <- Bind_sock;
      (s, Program.Sys (Syscall.Sock_create Socket.Dgram))
    | Bind_sock, Syscall.Ret (Syscall.Rint fd) ->
      s.fd <- fd;
      s.ph <- Loop;
      (s, Program.Sys (Syscall.Bind (fd, { Addr.ip = Addr.any; port = s.port })))
    | Loop, _ ->
      (* alternate: send next datagram (if any), then poll-receive *)
      (match outcome with
       | Syscall.Ret (Syscall.Rfrom (_, d)) when String.length d = 4 ->
         s.got <- Int32.to_int (String.get_int32_le d 0) :: s.got;
         s.idle <- 0
       | Syscall.Err Zapc_simnet.Errno.EAGAIN -> s.idle <- s.idle + 1
       | _ -> ());
      if s.sent < s.count then begin
        s.sent <- s.sent + 1;
        ( s,
          Program.Sys
            (Syscall.Sendto (s.fd, { Addr.ip = peer s; port = s.port }, u32 s.sent)) )
      end
      else if s.idle > 200 then begin
        s.ph <- Closing;
        ( s,
          Program.Sys
            (Syscall.Log
               (Printf.sprintf "udp rank=%d got=%d dup=%b" s.rank (List.length s.got)
                  (List.length s.got <> List.length (List.sort_uniq Int.compare s.got)))) )
      end
      else begin
        (* wait a bit for more datagrams *)
        s.idle <- s.idle + 1;
        ( s,
          Program.Sys
            (Syscall.Recvfrom (s.fd, 100, { Socket.peek = false; oob = false; dontwait = true })) )
      end
    | Closing, _ -> (s, Program.Exit 0)
    | Bind_sock, _ -> (s, Program.Exit 1)

  let ph_to_int = function Mk_sock -> 0 | Bind_sock -> 1 | Loop -> 2 | Closing -> 3
  let int_to_ph = function 0 -> Mk_sock | 1 -> Bind_sock | 2 -> Loop | _ -> Closing

  let to_value s =
    Value.assoc
      [ ("rank", Value.int s.rank);
        ("vips", Value.list Value.int (Array.to_list s.vips));
        ("port", Value.int s.port); ("count", Value.int s.count);
        ("ph", Value.int (ph_to_int s.ph)); ("fd", Value.int s.fd);
        ("sent", Value.int s.sent); ("got", Value.list Value.int s.got);
        ("idle", Value.int s.idle) ]

  let of_value v =
    {
      rank = Value.to_int (Value.field "rank" v);
      vips = Array.of_list (Value.to_list Value.to_int (Value.field "vips" v));
      port = Value.to_int (Value.field "port" v);
      count = Value.to_int (Value.field "count" v);
      ph = int_to_ph (Value.to_int (Value.field "ph" v));
      fd = Value.to_int (Value.field "fd" v);
      sent = Value.to_int (Value.field "sent" v);
      got = Value.to_list Value.to_int (Value.field "got" v);
      idle = Value.to_int (Value.field "idle" v);
    }
end

(* Sets an application-level alarm (the paper's timeout mechanism), sleeps
   through a checkpoint/restart, then reports how much alarm remains and what
   the virtual clock says — time virtualization must keep both continuous. *)
module Alarm_prog = struct
  type state = int

  let name = "test.alarm"
  let start _ = 0

  let step phase (outcome : Syscall.outcome) =
    match (phase, outcome) with
    | 0, _ -> (1, Program.Sys (Syscall.Alarm_set (Simtime.ms 500)))
    | 1, _ -> (2, Program.Sys (Syscall.Nanosleep (Simtime.ms 200)))
    | 2, _ -> (3, Program.Sys Syscall.Alarm_remaining)
    | 3, Syscall.Ret (Syscall.Rtime rem) ->
      (4, Program.Sys (Syscall.Log (Printf.sprintf "alarm_rem=%d" rem)))
    | 4, _ -> (5, Program.Sys Syscall.Clock_gettime)
    | 5, Syscall.Ret (Syscall.Rtime t) ->
      (6, Program.Sys (Syscall.Log (Printf.sprintf "clock=%d" t)))
    | _, _ -> (6, Program.Exit 0)

  let to_value p = Value.Int p
  let of_value = Value.to_int
end

(* Stop-and-wait ping over the kernel-bypass (Myrinet/GM-style) device:
   unreliable transport, so lost messages (e.g. in flight during a
   checkpoint) are retried after a poll timeout — the usual discipline of
   libraries built on GM. *)
module Gm_ping = struct
  type phase = Open | Sending of int | Waiting of int | Reading of int | Done_gm

  type state = {
    peer : int;  (* pong's vip *)
    count : int;
    mutable ph : phase;
    mutable fd : int;
  }

  let name = "test.gm_ping"

  let start args =
    { peer = Value.to_int (Value.field "peer" args);
      count = Value.to_int (Value.field "count" args); ph = Open; fd = -1 }

  let u32 n =
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int n);
    Bytes.unsafe_to_string b

  let send_action s n =
    Program.Sys (Syscall.Gm_send (s.fd, { Addr.ip = s.peer; port = 7 }, u32 n))

  let step s (outcome : Syscall.outcome) =
    match (s.ph, outcome) with
    | Open, Syscall.Ret (Syscall.Rint fd) ->
      s.fd <- fd;
      s.ph <- Sending 1;
      (s, send_action s 1)
    | Open, _ -> (s, Program.Sys (Syscall.Gm_open { Addr.ip = Addr.any; port = 0 }))
    | Sending n, _ ->
      s.ph <- Waiting n;
      ( s,
        Program.Sys
          (Syscall.Poll
             ( [ { Syscall.pfd = s.fd; want_read = true; want_write = false } ],
               Some (Simtime.ms 50) )) )
    | Waiting n, Syscall.Ret (Syscall.Rpoll []) ->
      (* echo lost (unreliable transport): retry *)
      s.ph <- Sending n;
      (s, send_action s n)
    | Waiting n, Syscall.Ret (Syscall.Rpoll _) ->
      s.ph <- Reading n;
      (s, Program.Sys (Syscall.Gm_recv s.fd))
    | Reading n, Syscall.Ret (Syscall.Rfrom (_, d)) ->
      let v = Int32.to_int (String.get_int32_le d 0) in
      if v < n then begin
        (* stale duplicate echo: keep going *)
        s.ph <- Sending n;
        (s, send_action s n)
      end
      else if n >= s.count then begin
        s.ph <- Done_gm;
        (s, Program.Sys (Syscall.Log (Printf.sprintf "gm done n=%d" n)))
      end
      else begin
        s.ph <- Sending (n + 1);
        (s, send_action s (n + 1))
      end
    | Done_gm, _ -> (s, Program.Exit 0)
    | _, Syscall.Err _ -> (s, Program.Exit 1)
    | _, _ -> (s, Program.Exit 2)

  let ph_to_value = function
    | Open -> Value.List [ Value.Int 0; Value.Int 0 ]
    | Sending n -> Value.List [ Value.Int 1; Value.Int n ]
    | Waiting n -> Value.List [ Value.Int 2; Value.Int n ]
    | Reading n -> Value.List [ Value.Int 3; Value.Int n ]
    | Done_gm -> Value.List [ Value.Int 4; Value.Int 0 ]

  let ph_of_value v =
    match v with
    | Value.List [ Value.Int 0; _ ] -> Open
    | Value.List [ Value.Int 1; Value.Int n ] -> Sending n
    | Value.List [ Value.Int 2; Value.Int n ] -> Waiting n
    | Value.List [ Value.Int 3; Value.Int n ] -> Reading n
    | _ -> Done_gm

  let to_value s =
    Value.assoc
      [ ("peer", Value.int s.peer); ("count", Value.int s.count);
        ("ph", ph_to_value s.ph); ("fd", Value.int s.fd) ]

  let of_value v =
    { peer = Value.to_int (Value.field "peer" v);
      count = Value.to_int (Value.field "count" v);
      ph = ph_of_value (Value.field "ph" v);
      fd = Value.to_int (Value.field "fd" v) }
end

module Gm_pong = struct
  type state = { mutable ph : int; mutable fd : int }

  let name = "test.gm_pong"
  let start _ = { ph = 0; fd = -1 }

  let step s (outcome : Syscall.outcome) =
    match (s.ph, outcome) with
    | 0, _ ->
      s.ph <- 1;
      (s, Program.Sys (Syscall.Gm_open { Addr.ip = Addr.any; port = 7 }))
    | 1, Syscall.Ret (Syscall.Rint fd) ->
      s.fd <- fd;
      s.ph <- 2;
      (s, Program.Sys (Syscall.Gm_recv fd))
    | 2, Syscall.Ret (Syscall.Rfrom (src, d)) ->
      s.ph <- 3;
      (s, Program.Sys (Syscall.Gm_send (s.fd, src, d)))
    | 3, _ ->
      s.ph <- 2;
      (s, Program.Sys (Syscall.Gm_recv s.fd))
    | _, _ -> (s, Program.Exit 1)

  let to_value s = Value.List [ Value.Int s.ph; Value.Int s.fd ]

  let of_value = function
    | Value.List [ Value.Int ph; Value.Int fd ] -> { ph; fd }
    | _ -> failwith "bad"
end

(* Allocates [regions] regions of [size] bytes, then rewrites [stride] of
   them (rotating) every [period_us] for [loops] iterations — a
   controllable dirty rate for the live-migration tests.  [loops = 0]
   allocates, logs and sleeps: a quiescent working set. *)
module Dirtyhog = struct
  type state = {
    regions : int;
    size : int;
    stride : int;
    period_us : int;
    loops : int;
    mutable ph : int;  (* 0..regions-1: allocation; then past-the-end *)
    mutable iter : int;
    mutable next : int;  (* 0 = sleep next; 1..stride = touch next *)
  }

  let name = "test.dirtyhog"

  let start args =
    { regions = Value.to_int (Value.field "regions" args);
      size = Value.to_int (Value.field "size" args);
      stride = Value.to_int (Value.field "stride" args);
      period_us = Value.to_int (Value.field "period_us" args);
      loops = Value.to_int (Value.field "loops" args);
      ph = 0; iter = 0; next = 0 }

  let region i = Printf.sprintf "hog.%d" i

  let step s (_ : Syscall.outcome) =
    if s.ph < s.regions then begin
      let i = s.ph in
      s.ph <- s.ph + 1;
      (s, Program.Sys (Syscall.Mem_alloc (region i, s.size)))
    end
    else if s.iter >= s.loops then
      match s.ph - s.regions with
      | 0 ->
        s.ph <- s.ph + 1;
        (s, Program.Sys (Syscall.Log "dirtyhog ready"))
      | _ ->
        (* park like a long-running server: sleep forever in a loop, so the
           process is still alive whenever the engine is sampled *)
        (s, Program.Sys (Syscall.Nanosleep (Simtime.sec 50.0)))
    else if s.next = 0 then begin
      s.next <- 1;
      (s, Program.Sys (Syscall.Nanosleep (Simtime.us s.period_us)))
    end
    else begin
      (* re-alloc at the same size: marks the region dirty (a page write) *)
      let i = ((s.iter * s.stride) + (s.next - 1)) mod s.regions in
      if s.next >= s.stride then begin
        s.next <- 0;
        s.iter <- s.iter + 1
      end
      else s.next <- s.next + 1;
      (s, Program.Sys (Syscall.Mem_alloc (region i, s.size)))
    end

  let to_value s =
    Value.assoc
      [ ("regions", Value.int s.regions); ("size", Value.int s.size);
        ("stride", Value.int s.stride); ("period_us", Value.int s.period_us);
        ("loops", Value.int s.loops); ("ph", Value.int s.ph);
        ("iter", Value.int s.iter); ("next", Value.int s.next) ]

  let of_value v =
    { regions = Value.to_int (Value.field "regions" v);
      size = Value.to_int (Value.field "size" v);
      stride = Value.to_int (Value.field "stride" v);
      period_us = Value.to_int (Value.field "period_us" v);
      loops = Value.to_int (Value.field "loops" v);
      ph = Value.to_int (Value.field "ph" v);
      iter = Value.to_int (Value.field "iter" v);
      next = Value.to_int (Value.field "next" v) }
end

let () =
  Program.register_if_absent (module Ring : Program.S);
  Program.register_if_absent (module Udp_chat : Program.S);
  Program.register_if_absent (module Alarm_prog : Program.S);
  Program.register_if_absent (module Gm_ping : Program.S);
  Program.register_if_absent (module Gm_pong : Program.S);
  Program.register_if_absent (module Dirtyhog : Program.S)

(* launch [n] pods on the given nodes running a raw (non-Mpi) program *)
let launch_raw cluster ~name ~program ~placement ~mk_args =
  let pods =
    List.mapi
      (fun r node ->
        Cluster.create_pod cluster ~node_idx:node ~name:(Printf.sprintf "%s-%d" name r))
      placement
  in
  Cluster.link_pods pods;
  let vips = List.map (fun (p : Pod.t) -> p.vip) pods in
  let procs = List.mapi (fun r pod -> Pod.spawn pod ~program ~args:(mk_args r vips)) pods in
  (pods, procs)

let exited procs = List.for_all (fun (p : Proc.t) -> p.Proc.exit_code <> None) procs

let bt_args g iters =
  Zapc_apps.Bt_nas.params_to_value { Zapc_apps.Bt_nas.default_params with g; iters }

(* ranks of a restarted app: collect the program's processes from the
   re-created pods *)
let restarted_ranks pod_ids program =
  List.concat_map
    (fun id ->
      match Pod.find id with
      | None -> []
      | Some pod ->
        List.filter_map
          (fun (_, (pr : Proc.t)) ->
            if String.equal (Program.name_of pr.Proc.inst) program then Some pr else None)
          (Pod.members pod))
    pod_ids

(* ------------------------------------------------------------------ *)

let test_snapshot_then_continue () =
  let cluster = make_cluster () in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 96 30) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  let r = Cluster.snapshot cluster ~pods:app.Launch.pods ~key_prefix:"snap" in
  check tbool "snapshot ok" true r.Manager.r_ok;
  check tint "two metas" 2 (List.length r.Manager.r_metas);
  check tint "two stats" 2 (List.length r.Manager.r_stats);
  (* the application continues and completes correctly after the snapshot *)
  ignore (Launch.wait_done cluster app);
  check tbool "checksum logged" true (has_log "bt_nas: checksum");
  (* network-state time is a small fraction of the total (paper section 6) *)
  List.iter
    (fun (_, st) ->
      check tbool "net time < local time" true
        (st.Protocol.st_net_time < st.Protocol.st_local_time))
    r.Manager.r_stats

let test_restart_on_other_nodes_same_result () =
  let cluster = make_cluster () in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 96 30) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  let r = Cluster.snapshot cluster ~pods:app.Launch.pods ~key_prefix:"snap2" in
  check tbool "snapshot ok" true r.Manager.r_ok;
  ignore (Launch.wait_done cluster app);
  let reference = Option.get (find_log "bt_nas: checksum") in
  logged := [];
  (* restart the snapshot on different nodes *)
  let rr =
    Cluster.restart_app cluster ~pod_ids:(Launch.pod_ids app) ~target_nodes:[ 2; 3 ]
      ~key_prefix:"snap2"
  in
  check tbool "restart ok" true rr.Manager.r_ok;
  let ranks = restarted_ranks (Launch.pod_ids app) "bt_nas" in
  check tint "both ranks restored" 2 (List.length ranks);
  Cluster.run_until cluster ~timeout:(Simtime.sec 1200.0) (fun () -> exited ranks);
  (* bit-identical result from the restarted computation *)
  check tbool "same checksum" true (List.mem reference !logged);
  (* the restored pods live on the new nodes *)
  List.iter
    (fun id ->
      let pod = Option.get (Pod.find id) in
      match Zapc_simnet.Fabric.node_of_ip (Cluster.fabric cluster) pod.Pod.rip with
      | Some n -> check tbool "on node 2 or 3" true (n = 2 || n = 3)
      | None -> Alcotest.fail "pod rip unattached")
    (Launch.pod_ids app)

let test_migration_streaming () =
  let cluster = make_cluster () in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 96 30) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  (* checkpoint streamed directly to the destination Agents, no storage *)
  let items =
    List.map2
      (fun (p : Pod.t) target ->
        { Manager.ci_node = (match Zapc_simnet.Fabric.node_of_ip (Cluster.fabric cluster) p.rip with Some n -> n | None -> -1);
          ci_pod = p.pod_id; ci_dest = Protocol.U_node target })
      app.Launch.pods [ 2; 3 ]
  in
  let r = Cluster.checkpoint_sync cluster ~items ~resume:false in
  check tbool "migrate checkpoint ok" true r.Manager.r_ok;
  (* source pods are destroyed *)
  check tbool "sources gone" true
    (List.for_all (fun id -> Pod.find id = None) (Launch.pod_ids app));
  (* restart from the streamed images *)
  let ritems =
    List.map2
      (fun id target ->
        { Manager.ri_node = target; ri_pod = id; ri_uri = Protocol.U_node target })
      (Launch.pod_ids app) [ 2; 3 ]
  in
  let rr = Cluster.restart_sync cluster ~items:ritems in
  check tbool "restart ok" true rr.Manager.r_ok;
  let ranks = restarted_ranks (Launch.pod_ids app) "bt_nas" in
  check tint "ranks" 2 (List.length ranks);
  Cluster.run_until cluster ~timeout:(Simtime.sec 1200.0) (fun () -> exited ranks);
  check tbool "completes after migration" true (has_log "bt_nas: checksum")

let test_ring_restart () =
  let cluster = make_cluster ~nodes:4 () in
  let placement = [ 0; 1; 2 ] in
  let pods, procs =
    launch_raw cluster ~name:"ring" ~program:"test.ring" ~placement
      ~mk_args:(fun r vips ->
        Value.assoc
          [ ("rank", Value.int r); ("size", Value.int 3);
            ("vips", Value.list Value.int vips); ("port", Value.int 4400);
            ("limit", Value.int 5000) ])
  in
  (* let the ring get going, then snapshot mid-token *)
  Cluster.run cluster ~until:(Simtime.ms 40) ();
  check tbool "still running" true (not (exited procs));
  let r = Cluster.snapshot cluster ~pods ~key_prefix:"ring" in
  check tbool "ring snapshot ok" true r.Manager.r_ok;
  (* every pod has both a connect-role and an accept-role endpoint *)
  List.iter
    (fun (pm : Zapc_netckpt.Meta.pod_meta) ->
      let roles = List.map (fun e -> e.Zapc_netckpt.Meta.role) pm.pm_entries in
      check tbool "has accept" true (List.mem Zapc_netckpt.Meta.Accept roles);
      check tbool "has connect" true (List.mem Zapc_netckpt.Meta.Connect roles))
    r.Manager.r_metas;
  (* kill the originals, restart the ring on fresh nodes; recovery must not
     deadlock even though the connection graph is a cycle *)
  List.iter Pod.destroy pods;
  let pod_ids = List.map (fun (p : Pod.t) -> p.Pod.pod_id) pods in
  let rr =
    Cluster.restart_app cluster ~pod_ids ~target_nodes:[ 3; 3; 3 ] ~key_prefix:"ring"
  in
  check tbool "ring restart ok" true rr.Manager.r_ok;
  let ranks = restarted_ranks pod_ids "test.ring" in
  check tint "three restored" 3 (List.length ranks);
  Cluster.run_until cluster ~timeout:(Simtime.sec 600.0) (fun () -> exited ranks);
  check tbool "token completed" true (has_log "ring done v=5000");
  List.iter (fun (p : Proc.t) -> check tbool "clean exit" true (p.exit_code = Some 0)) ranks

let test_udp_across_checkpoint () =
  let cluster = make_cluster () in
  let pods, procs =
    launch_raw cluster ~name:"udp" ~program:"test.udp_chat" ~placement:[ 0; 1 ]
      ~mk_args:(fun r vips ->
        Value.assoc
          [ ("rank", Value.int r); ("vips", Value.list Value.int vips);
            ("port", Value.int 4500); ("count", Value.int 3000) ])
  in
  Cluster.run cluster ~until:(Simtime.ms 2) ();
  let r = Cluster.snapshot cluster ~pods ~key_prefix:"udp" in
  check tbool "snapshot ok" true r.Manager.r_ok;
  Cluster.run_until cluster ~timeout:(Simtime.sec 600.0) (fun () -> exited procs);
  (* both peers finished; no duplicated datagrams (loss is acceptable) *)
  check tbool "rank0 done" true (has_log "udp rank=0");
  check tbool "rank1 done" true (has_log "udp rank=1");
  check tbool "no duplicates" true
    (List.for_all
       (fun s ->
         not (String.length s >= 3 && String.equal (String.sub s 0 3) "udp")
         || not
              (String.length s > 9
               && String.equal (String.sub s (String.length s - 9) 9) "dup=true"))
       !logged)

let test_manager_failure_aborts () =
  let cluster = make_cluster () in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 96 25) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  (* begin a checkpoint, then sever one Agent's control connection while the
     operation is in flight *)
  let result = ref None in
  let items =
    List.map
      (fun (p : Pod.t) ->
        { Manager.ci_node = (match Zapc_simnet.Fabric.node_of_ip (Cluster.fabric cluster) p.rip with Some n -> n | None -> -1);
          ci_pod = p.pod_id; ci_dest = Protocol.U_storage "doomed" })
      app.Launch.pods
  in
  Manager.checkpoint (Cluster.manager cluster) ~items ~resume:true ~on_done:(fun r ->
      result := Some r);
  Engine.schedule (Cluster.engine cluster) ~delay:(Simtime.ms 20) (fun () ->
      Manager.break_channel (Cluster.manager cluster) ~node:0);
  Cluster.run_until cluster (fun () -> !result <> None);
  (* the operation aborts... *)
  check tbool "operation failed" true (not (Option.get !result).Manager.r_ok);
  (* ...and the application resumes gracefully and still completes correctly
     (paper section 4: "the operation will be gracefully aborted, and the
     application will resume its execution") *)
  ignore (Launch.wait_done cluster app);
  check tbool "app completed after abort" true (has_log "bt_nas: checksum")

let test_checkpoint_completes_without_failure () =
  let cluster = make_cluster () in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 96 25) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  let r = Cluster.snapshot cluster ~pods:app.Launch.pods ~key_prefix:"ok" in
  check tbool "completed" true r.Manager.r_ok;
  ignore (Launch.wait_done cluster app);
  check tbool "app completed" true (has_log "bt_nas: checksum")

let test_agent_channel_break () =
  let params = Params.default in
  Zapc_apps.Registry.register_all ();
  let engine = Engine.create ~seed:1 () in
  let ch = Zapc.Control.create ~engine ~latency:(Simtime.us 100) ~bps:1e9 in
  let got = ref [] in
  Zapc.Control.set_up_handler ch (fun m -> got := m :: !got);
  Zapc.Control.on_break ch (fun () -> got := "broken" :: !got);
  Zapc.Control.send_up ch ~bytes:10 "hello";
  Engine.run engine;
  Alcotest.(check (list string)) "delivered" [ "hello" ] !got;
  Zapc.Control.send_up ch ~bytes:10 "in-flight";
  Zapc.Control.break ch;
  Engine.run engine;
  (* in-flight message dropped; both sides notified *)
  check tbool "break notified" true (List.mem "broken" !got);
  check tbool "in-flight dropped" true (not (List.mem "in-flight" !got));
  ignore params

let test_restart_missing_image_fails_cleanly () =
  let cluster = make_cluster () in
  let r =
    Cluster.restart_sync cluster
      ~items:[ { Manager.ri_node = 0; ri_pod = 999; ri_uri = Protocol.U_storage "absent" } ]
  in
  check tbool "fails" true (not r.Manager.r_ok)

let test_two_pods_per_node_dual_cpu () =
  (* the paper's 16-node configuration: dual-CPU nodes, one pod per CPU *)
  let cluster = make_cluster ~nodes:2 ~cpus:2 () in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 0; 1; 1 ]
      ~app_args:(bt_args 96 25) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  let r = Cluster.snapshot cluster ~pods:app.Launch.pods ~key_prefix:"dual" in
  check tbool "snapshot of 4 pods on 2 nodes" true r.Manager.r_ok;
  check tint "four pods" 4 (List.length r.Manager.r_stats);
  ignore (Launch.wait_done cluster app);
  check tbool "completes" true (has_log "bt_nas: checksum")

(* checkpoint the restarted application AGAIN and restart it elsewhere: the
   second checkpoint must re-extract data parked in alternate receive queues
   by the first restore, and the end result must still be identical *)
let test_double_restart_chain () =
  let cluster = make_cluster () in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 96 40) ()
  in
  ignore (Launch.wait_done cluster app);
  let reference = Option.get (find_log "bt_nas: checksum") in
  (* same workload, interrupted twice *)
  let cluster = make_cluster () in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 96 40) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 6) ();
  let r1 = Cluster.snapshot cluster ~pods:app.Launch.pods ~key_prefix:"hop1" in
  check tbool "first snapshot" true r1.Manager.r_ok;
  List.iter Pod.destroy app.Launch.pods;
  let rr1 =
    Cluster.restart_app cluster ~pod_ids:(Launch.pod_ids app) ~target_nodes:[ 2; 3 ]
      ~key_prefix:"hop1"
  in
  check tbool "first restart" true rr1.Manager.r_ok;
  (* run a little, then snapshot the RESTARTED pods and move them again *)
  Cluster.run cluster ~until:(Simtime.add (Cluster.now cluster) (Simtime.ms 6)) ();
  let pods2 = List.filter_map Pod.find (Launch.pod_ids app) in
  check tint "pods alive after first restart" 2 (List.length pods2);
  let r2 = Cluster.snapshot cluster ~pods:pods2 ~key_prefix:"hop2" in
  check tbool "second snapshot" true r2.Manager.r_ok;
  List.iter Pod.destroy pods2;
  let rr2 =
    Cluster.restart_app cluster ~pod_ids:(Launch.pod_ids app) ~target_nodes:[ 1; 0 ]
      ~key_prefix:"hop2"
  in
  check tbool "second restart" true rr2.Manager.r_ok;
  Cluster.run_until cluster ~timeout:(Simtime.sec 2400.0) (fun () ->
      find_log "bt_nas: checksum" <> None);
  check tbool "identical result after two hops" true (List.mem reference !logged)

(* restart over a lossy fabric: connection recovery and the send-queue
   resend ride on real TCP, so retransmission must absorb the loss *)
let test_restart_with_packet_loss () =
  let cluster = make_cluster () in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 96 30) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 6) ();
  let r = Cluster.snapshot cluster ~pods:app.Launch.pods ~key_prefix:"lossy" in
  check tbool "snapshot" true r.Manager.r_ok;
  ignore (Launch.wait_done cluster app);
  let reference = Option.get (find_log "bt_nas: checksum") in
  logged := [];
  Zapc_simnet.Fabric.set_loss_prob (Cluster.fabric cluster) 0.03;
  let rr =
    Cluster.restart_app cluster ~pod_ids:(Launch.pod_ids app) ~target_nodes:[ 2; 3 ]
      ~key_prefix:"lossy"
  in
  check tbool "restart over lossy fabric" true rr.Manager.r_ok;
  Cluster.run_until cluster ~timeout:(Simtime.sec 2400.0) (fun () ->
      find_log "bt_nas: checksum" <> None);
  check tbool "identical result despite loss" true (List.mem reference !logged)

(* the application-level timeout mechanism survives a checkpoint/restart
   with a long down-time in between: the alarm's remaining time and the
   virtual clock both continue as if the gap never happened *)
let test_alarm_and_clock_across_restart () =
  let cluster = make_cluster () in
  let pod = Cluster.create_pod cluster ~node_idx:0 ~name:"alarmpod" in
  Cluster.link_pods [ pod ];
  let _p = Pod.spawn pod ~program:"test.alarm" ~args:Value.unit in
  (* checkpoint mid-sleep at 100 ms *)
  Cluster.run cluster ~until:(Simtime.ms 100) ();
  let r = Cluster.snapshot cluster ~pods:[ pod ] ~key_prefix:"alarm" in
  check tbool "snapshot" true r.Manager.r_ok;
  Pod.destroy pod;
  (* a long outage: restart only at t=5s *)
  Cluster.run cluster ~until:(Simtime.sec 5.0) ();
  let rr =
    Cluster.restart_app cluster ~pod_ids:[ pod.Pod.pod_id ] ~target_nodes:[ 2 ]
      ~key_prefix:"alarm"
  in
  check tbool "restart" true rr.Manager.r_ok;
  Cluster.run_until cluster ~timeout:(Simtime.sec 60.0) (fun () ->
      find_log "clock=" <> None);
  (* the alarm was set to 500 ms at ~0 and checked at ~200 ms of app time:
     ~300 ms must remain — it must NOT have expired during the 5 s outage *)
  (match find_log "alarm_rem=" with
   | Some line ->
     let rem = int_of_string (String.sub line 10 (String.length line - 10)) in
     check tbool "alarm not expired" true (rem > Simtime.ms 200 && rem <= Simtime.ms 400)
   | None -> Alcotest.fail "no alarm log");
  (* and the virtual clock hides the outage: it reads ~200 ms, not ~5 s *)
  match find_log "clock=" with
  | Some line ->
    let t = int_of_string (String.sub line 6 (String.length line - 6)) in
    check tbool "clock continuous" true (t < Simtime.ms 400)
  | None -> Alcotest.fail "no clock log"

let test_checkpoint_timing_structure () =
  let cluster = make_cluster () in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 128 30) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  let r = Cluster.snapshot cluster ~pods:app.Launch.pods ~key_prefix:"timing" in
  check tbool "ok" true r.Manager.r_ok;
  List.iter
    (fun (_, st) ->
      (* network-state checkpoint well under 10ms, a small fraction of the
         local time (paper: 3-10%) *)
      check tbool "net ckpt < 10ms" true (st.Protocol.st_net_time < Simtime.ms 10);
      check tbool "images nonempty" true (st.Protocol.st_image_bytes > 1_000_000);
      check tbool "procs = app + daemon" true (st.Protocol.st_procs = 2))
    r.Manager.r_stats;
  (* total duration includes agent work plus control round-trips *)
  check tbool "duration covers agent local time" true
    (List.for_all
       (fun (_, st) -> r.Manager.r_duration >= st.Protocol.st_local_time)
       r.Manager.r_stats)

(* N -> M reshaping (paper section 3: "ZapC can migrate a distributed
   application running on N cluster nodes to run on M cluster nodes, where
   generally N != M"): 4 pods from 4 nodes consolidated onto 2, then the
   result must still be exact *)
let test_n_to_m_consolidation () =
  let cluster = make_cluster ~nodes:4 () in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1; 2; 3 ]
      ~app_args:(bt_args 96 40) ()
  in
  ignore (Launch.wait_done cluster app);
  let reference = Option.get (find_log "bt_nas: checksum") in
  let cluster = make_cluster ~nodes:4 () in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1; 2; 3 ]
      ~app_args:(bt_args 96 40) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 6) ();
  let r = Cluster.snapshot cluster ~pods:app.Launch.pods ~key_prefix:"ntom" in
  check tbool "snapshot" true r.Manager.r_ok;
  List.iter Pod.destroy app.Launch.pods;
  (* two pods per node on nodes 0 and 1 *)
  let rr =
    Cluster.restart_app cluster ~pod_ids:(Launch.pod_ids app) ~target_nodes:[ 0; 0; 1; 1 ]
      ~key_prefix:"ntom"
  in
  check tbool "restart 4 pods on 2 nodes" true rr.Manager.r_ok;
  List.iter
    (fun id ->
      let pod = Option.get (Pod.find id) in
      match Zapc_simnet.Fabric.node_of_ip (Cluster.fabric cluster) pod.Pod.rip with
      | Some n -> check tbool "consolidated" true (n = 0 || n = 1)
      | None -> Alcotest.fail "pod unattached")
    (Launch.pod_ids app);
  Cluster.run_until cluster ~timeout:(Simtime.sec 2400.0) (fun () ->
      find_log "bt_nas: checksum" <> None);
  check tbool "identical result on half the nodes" true (List.mem reference !logged)

(* the periodic-checkpoint service: rotating epochs, pruning, and recovery
   of the whole application from the last good epoch after a crash *)
let test_periodic_service_recovery () =
  let cluster = make_cluster () in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 256 1500) ()
  in
  ignore (Launch.wait_done cluster app);
  let reference = Option.get (find_log "bt_nas: checksum") in
  (* fresh run with the service ticking every 200 ms *)
  let cluster = make_cluster () in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 256 1500) ()
  in
  let svc =
    Zapc.Periodic.start cluster ~pods:app.Launch.pods ~prefix:"svc"
      ~period:(Simtime.ms 200) ~keep:2 ()
  in
  Cluster.run cluster ~until:(Simtime.ms 900) ();
  check tbool "app still running at crash time" true (not (Launch.is_done app));
  check tbool "epochs completed" true (Zapc.Periodic.last_good svc >= 2);
  (* pruning: only the last [keep] epochs remain in storage *)
  let keys = Zapc.Storage.keys (Cluster.storage cluster) in
  let epoch_keys =
    List.filter
      (fun k -> String.length k >= 3 && String.equal (String.sub k 0 3) "svc")
      keys
  in
  check tbool "old epochs pruned" true (List.length epoch_keys <= 2 * 2);
  (* node 0 crashes; recover on fresh nodes from the last good epoch *)
  List.iter
    (fun (p : Pod.t) ->
      match Zapc_simnet.Fabric.node_of_ip (Cluster.fabric cluster) p.rip with
      | Some 0 -> Pod.destroy p
      | Some _ | None -> ())
    app.Launch.pods;
  Cluster.run_until cluster ~timeout:(Simtime.sec 10.0) (fun () ->
      not (Manager.busy (Cluster.manager cluster)));
  let r = Zapc.Periodic.recover svc ~target_nodes:[ 2; 3 ] in
  check tbool "recovery ok" true r.Manager.r_ok;
  Cluster.run_until cluster ~timeout:(Simtime.sec 2400.0) (fun () ->
      find_log "bt_nas: checksum" <> None);
  check tbool "identical result after recovery" true (List.mem reference !logged)

(* recover before any epoch completed: a structured refusal, not a crash *)
let test_periodic_recover_without_snapshot () =
  let cluster = make_cluster () in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 256 1500) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  let svc =
    Zapc.Periodic.start cluster ~pods:app.Launch.pods ~prefix:"virgin"
      ~period:(Simtime.sec 10.0) ()
  in
  check tint "no epoch yet" 0 (Zapc.Periodic.last_good svc);
  let r = Zapc.Periodic.recover svc ~target_nodes:[ 2; 3 ] in
  check tbool "recovery refused" true (not r.Manager.r_ok);
  (match r.Manager.r_failure with
   | Some (Protocol.F_missing_image _) -> ()
   | _ -> Alcotest.fail "expected F_missing_image for last_good = 0");
  Zapc.Periodic.stop svc

(* a period shorter than a checkpoint: overlapping epochs are skipped while
   the Manager is busy (never queued), with the reason recorded *)
let test_periodic_skips_while_busy () =
  let cluster = make_cluster () in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 256 1500) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  let svc =
    Zapc.Periodic.start cluster ~pods:app.Launch.pods ~prefix:"busy"
      ~period:(Simtime.ms 20) ~keep:2 ()
  in
  Cluster.run cluster ~until:(Simtime.ms 800) ();
  check tbool "some epochs completed" true (Zapc.Periodic.completed svc >= 1);
  check tbool "overlapping epochs skipped" true (Zapc.Periodic.skipped svc > 0);
  (match Zapc.Periodic.last_skip_reason svc with
   | Some "manager busy" -> ()
   | Some other -> Alcotest.fail ("unexpected skip reason: " ^ other)
   | None -> Alcotest.fail "skip reason not recorded");
  Zapc.Periodic.stop svc

(* a pod whose address is no longer on the fabric must skip the epoch with
   a recorded reason — never fall back to checkpointing on node 0 *)
let test_periodic_skips_unresolvable_pod () =
  let cluster = make_cluster () in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 256 1500) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  let svc =
    Zapc.Periodic.start cluster ~pods:app.Launch.pods ~prefix:"unres"
      ~period:(Simtime.ms 200) ~keep:2 ()
  in
  Cluster.run_until cluster ~timeout:(Simtime.sec 10.0) (fun () ->
      Zapc.Periodic.completed svc >= 1
      && not (Manager.busy (Cluster.manager cluster)));
  (* node 1 falls off the fabric but its pod object survives *)
  Zapc_simnet.Fabric.detach_node (Cluster.fabric cluster) 1;
  let before = Zapc.Periodic.skipped svc in
  let good = Zapc.Periodic.last_good svc in
  Cluster.run cluster ~until:(Simtime.add (Cluster.now cluster) (Simtime.ms 500)) ();
  check tbool "epochs skipped, not misplaced" true (Zapc.Periodic.skipped svc > before);
  (match Zapc.Periodic.last_skip_reason svc with
   | Some reason ->
     check tbool "reason names the unresolvable pod" true
       (String.length reason > 0 && String.sub reason 0 3 = "pod")
   | None -> Alcotest.fail "skip reason not recorded");
  check tint "no further epoch completed" good (Zapc.Periodic.last_good svc);
  Zapc.Periodic.stop svc

(* pruning leaves exactly [keep] epochs resident (Storage.keys is exact) *)
let test_periodic_prunes_to_keep () =
  let cluster = make_cluster () in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 256 1500) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  let keep = 2 in
  let svc =
    Zapc.Periodic.start cluster ~pods:app.Launch.pods ~prefix:"rot"
      ~period:(Simtime.ms 150) ~keep ()
  in
  Cluster.run_until cluster ~timeout:(Simtime.sec 10.0) (fun () ->
      Zapc.Periodic.last_good svc >= keep + 2
      && not (Manager.busy (Cluster.manager cluster)));
  Zapc.Periodic.stop svc;
  let good = Zapc.Periodic.last_good svc in
  let expected =
    List.concat_map
      (fun e ->
        List.map
          (fun (p : Pod.t) -> Printf.sprintf "rot.e%d.pod%d" e p.Pod.pod_id)
          app.Launch.pods)
      (List.init keep (fun i -> good - keep + 1 + i))
    |> List.sort String.compare
  in
  let resident =
    List.filter
      (fun k -> String.length k >= 3 && String.equal (String.sub k 0 3) "rot")
      (Zapc.Storage.keys (Cluster.storage cluster))
  in
  check (Alcotest.list Alcotest.string) "exactly keep epochs resident" expected
    resident

(* --- incremental (delta) checkpointing --- *)

(* The first incremental epoch has no base and falls back to a full image;
   the second chains on the first and writes a fraction of the bytes (BT's
   untouched rss dominates the full image), and a restart from the *delta*
   epoch reproduces the exact result — Storage.get materializes the chain
   transparently. *)
let test_incremental_snapshot_and_restart () =
  let cluster = make_cluster () in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 96 30) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  let storage = Cluster.storage cluster in
  let r1 =
    Cluster.snapshot ~incremental:true cluster ~pods:app.Launch.pods
      ~key_prefix:"inc-e1"
  in
  check tbool "first epoch ok" true r1.Manager.r_ok;
  List.iter
    (fun (p : Pod.t) ->
      check tbool "first epoch is full" true
        (Zapc.Storage.base_key storage (Printf.sprintf "inc-e1.pod%d" p.Pod.pod_id)
         = None))
    app.Launch.pods;
  List.iter
    (fun (_, st) -> check tint "full write flagged as full" 0 st.Protocol.st_full_bytes)
    r1.Manager.r_stats;
  Cluster.run cluster ~until:(Simtime.ms 10) ();
  let r2 =
    Cluster.snapshot ~incremental:true cluster ~pods:app.Launch.pods
      ~key_prefix:"inc-e2"
  in
  check tbool "second epoch ok" true r2.Manager.r_ok;
  List.iter
    (fun (p : Pod.t) ->
      check tbool "second epoch chains on the first" true
        (Zapc.Storage.base_key storage (Printf.sprintf "inc-e2.pod%d" p.Pod.pod_id)
         = Some (Printf.sprintf "inc-e1.pod%d" p.Pod.pod_id)))
    app.Launch.pods;
  List.iter
    (fun (_, st) ->
      check tbool "delta write flagged" true (st.Protocol.st_full_bytes > 0);
      check tbool "delta <= 50% of the full bytes" true
        (st.Protocol.st_image_bytes * 2 <= st.Protocol.st_full_bytes))
    r2.Manager.r_stats;
  (* the app continues to its reference answer... *)
  ignore (Launch.wait_done cluster app);
  let reference = Option.get (find_log "bt_nas: checksum") in
  logged := [];
  (* ...and a restart from the delta epoch on other nodes reproduces it *)
  let rr =
    Cluster.restart_app cluster ~pod_ids:(Launch.pod_ids app) ~target_nodes:[ 2; 3 ]
      ~key_prefix:"inc-e2"
  in
  check tbool "restart from delta epoch ok" true rr.Manager.r_ok;
  let ranks = restarted_ranks (Launch.pod_ids app) "bt_nas" in
  Cluster.run_until cluster ~timeout:(Simtime.sec 1200.0) (fun () -> exited ranks);
  check tbool "same checksum from the delta epoch" true (List.mem reference !logged)

(* the Agents' chain cap is the only full-image forcing mechanism: with
   max_delta_chain = 2 the write pattern over five incremental epochs must
   be full, delta, delta, full, delta *)
let test_delta_chain_cap_forces_full () =
  let params = { Params.default with Params.max_delta_chain = 2 } in
  let cluster = make_cluster ~params () in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 256 1500) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  let storage = Cluster.storage cluster in
  for e = 1 to 5 do
    Cluster.run cluster ~until:(Simtime.ms (5 + (10 * e))) ();
    let r =
      Cluster.snapshot ~incremental:true cluster ~pods:app.Launch.pods
        ~key_prefix:(Printf.sprintf "cap.e%d" e)
    in
    check tbool (Printf.sprintf "epoch %d ok" e) true r.Manager.r_ok
  done;
  let base_of e pid =
    Zapc.Storage.base_key storage (Printf.sprintf "cap.e%d.pod%d" e pid)
  in
  List.iter
    (fun (p : Pod.t) ->
      let pid = p.Pod.pod_id in
      let link e = Some (Printf.sprintf "cap.e%d.pod%d" e pid) in
      check tbool "e1 full" true (base_of 1 pid = None);
      check tbool "e2 chains on e1" true (base_of 2 pid = link 1);
      check tbool "e3 chains on e2" true (base_of 3 pid = link 2);
      check tbool "e4 full again (cap reached)" true (base_of 4 pid = None);
      check tbool "e5 chains on e4" true (base_of 5 pid = link 4))
    app.Launch.pods

(* the Myrinet/GM extension (paper section 5): kernel-bypass messaging
   whose device-resident port state is extracted and reinstated across a
   migration; in-flight messages drop (unreliable) and the library's
   timeout-retry absorbs the loss *)
let test_gm_checkpoint_migration () =
  let cluster = make_cluster () in
  (* launched manually: ping and pong run different programs *)
  let pong_pod = Cluster.create_pod cluster ~node_idx:0 ~name:"gm-pong" in
  let ping_pod = Cluster.create_pod cluster ~node_idx:1 ~name:"gm-ping" in
  Cluster.link_pods [ pong_pod; ping_pod ];
  let pong = Pod.spawn pong_pod ~program:"test.gm_pong" ~args:Value.unit in
  let ping =
    Pod.spawn ping_pod ~program:"test.gm_ping"
      ~args:
        (Value.assoc
           [ ("peer", Value.int pong_pod.Pod.vip); ("count", Value.int 600) ])
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  check tbool "mid-run" true (ping.Proc.exit_code = None);
  (* checkpoint both, destroy, restart on nodes 2 and 3 *)
  let r = Cluster.snapshot cluster ~pods:[ pong_pod; ping_pod ] ~key_prefix:"gm" in
  check tbool "snapshot ok" true r.Manager.r_ok;
  List.iter Pod.destroy [ pong_pod; ping_pod ];
  let rr =
    Cluster.restart_app cluster
      ~pod_ids:[ pong_pod.Pod.pod_id; ping_pod.Pod.pod_id ]
      ~target_nodes:[ 2; 3 ] ~key_prefix:"gm"
  in
  check tbool "restart ok" true rr.Manager.r_ok;
  Cluster.run_until cluster ~timeout:(Simtime.sec 600.0) (fun () -> has_log "gm done");
  check tbool "all exchanges completed" true (has_log "gm done n=600");
  ignore pong

(* determinism: the entire cluster — kernels, TCP, protocol — is a
   deterministic function of the seed; two identical runs agree on every
   observable, event for event *)
let test_determinism () =
  let run () =
    let cluster = make_cluster ~seed:1234 () in
    let app =
      Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
        ~app_args:(bt_args 96 30) ()
    in
    Cluster.run cluster ~until:(Simtime.ms 5) ();
    let r = Cluster.snapshot cluster ~pods:app.Launch.pods ~key_prefix:"det" in
    let t = Launch.wait_done cluster app in
    (Simtime.to_sec t, r.Manager.r_duration,
     List.sort compare (List.map (fun (p, st) -> (p, st.Protocol.st_image_bytes)) r.Manager.r_stats),
     Option.get (find_log "bt_nas: checksum"))
  in
  let a = run () in
  let b = run () in
  check tbool "bit-for-bit reproducible" true (a = b)

(* the Figure-2 timeline: the standalone checkpoint overlaps the Manager
   synchronization, and resume waits for BOTH the local standalone
   checkpoint and the Manager's 'continue' *)
let test_figure2_timeline () =
  let cluster = make_cluster () in
  let tr = Cluster.enable_trace cluster in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 128 30) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  let r = Cluster.snapshot cluster ~pods:app.Launch.pods ~key_prefix:"fig2" in
  check tbool "ok" true r.Manager.r_ok;
  let time pod what =
    match Zapc.Trace.find tr ~pod what with
    | Some e -> e.Zapc.Trace.ev_time
    | None -> Alcotest.failf "missing trace event %s for pod %d" what pod
  in
  List.iter
    (fun (p : Pod.t) ->
      let id = p.pod_id in
      (* phases happen in Figure-1 order *)
      check tbool "suspend before net ckpt" true (time id "suspended" <= time id "net_ckpt_done");
      check tbool "net ckpt before meta" true (time id "net_ckpt_done" <= time id "meta_sent");
      (* the Manager's continue arrives DURING the standalone checkpoint:
         this is the overlap the network-state-first ordering buys *)
      check tbool "continue overlaps standalone" true
        (time id "continue_received" < time id "standalone_done");
      (* resume gates on both conditions *)
      check tbool "resume after standalone" true
        (time id "resumed" >= time id "standalone_done");
      check tbool "resume after continue" true
        (time id "resumed" >= time id "continue_received"))
    app.Launch.pods;
  (* the rendering is printable and mentions every pod *)
  let s = Zapc.Trace.render_checkpoint tr in
  check tbool "render nonempty" true (String.length s > 100);
  ignore (Launch.wait_done cluster app)

(* the same invariant asserted from the *rendered* timeline: the render is
   what the bench harness and CLI print, so its numbers (ms offsets from
   the Manager broadcast) must carry the Figure-2 structure too *)
let test_rendered_timeline () =
  let cluster = make_cluster () in
  let tr = Cluster.enable_trace cluster in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 128 30) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  let r = Cluster.snapshot cluster ~pods:app.Launch.pods ~key_prefix:"rfig2" in
  check tbool "ok" true r.Manager.r_ok;
  let s = Zapc.Trace.render_checkpoint tr in
  (* pod rows: "pod suspnd netck meta standa contin resume" *)
  let rows =
    List.filter_map
      (fun line ->
        match
          String.split_on_char ' ' line |> List.filter (fun x -> x <> "")
        with
        | [ pod; su; ne; me; st; co; re ] ->
          (match int_of_string_opt pod with
           | Some p ->
             Some
               ( p, float_of_string su, float_of_string ne, float_of_string me,
                 float_of_string st, float_of_string co, float_of_string re )
           | None -> None)
        | _ -> None)
      (String.split_on_char '\n' s)
  in
  check tint "one rendered row per pod" (List.length app.Launch.pods)
    (List.length rows);
  List.iter
    (fun (pod, suspend, netck, meta, standalone, continue_, resume) ->
      check tbool (Printf.sprintf "pod%d: suspend first" pod) true
        (suspend <= netck && netck <= meta);
      (* the overlap: 'continue' lands after the meta-data went out but
         DURING the standalone checkpoint *)
      check tbool (Printf.sprintf "pod%d: continue overlaps standalone" pod)
        true
        (meta <= continue_ && continue_ < standalone);
      (* resume gates on standalone_done AND continue_received *)
      check tbool (Printf.sprintf "pod%d: resume gates on both" pod) true
        (resume >= standalone && resume >= continue_))
    rows;
  ignore (Launch.wait_done cluster app)

let test_serial_ablation_slower () =
  let run_mode serial =
    let params =
      { Params.default with Params.serial_ckpt = serial; cost_jitter = 0.0 }
    in
    let cluster = make_cluster ~params () in
    let app =
      Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
        ~app_args:(bt_args 128 30) ()
    in
    Cluster.run cluster ~until:(Simtime.ms 5) ();
    let r = Cluster.snapshot cluster ~pods:app.Launch.pods ~key_prefix:"abl" in
    check tbool "ok" true r.Manager.r_ok;
    r.Manager.r_duration
  in
  let overlapped = run_mode false in
  let serial = run_mode true in
  check tbool "overlapped checkpoint is not slower" true (overlapped <= serial)

(* --- live migration (iterative pre-copy) --- *)

let hog_args ~regions ~size ~stride ~period_us ~loops =
  Value.assoc
    [ ("regions", Value.int regions); ("size", Value.int size);
      ("stride", Value.int stride); ("period_us", Value.int period_us);
      ("loops", Value.int loops) ]

(* One pod on [node_idx] running a dirtyhog with the given touch pattern. *)
let launch_hog cluster ~node_idx ~args =
  let pod = Cluster.create_pod cluster ~node_idx ~name:"hog" in
  Cluster.link_pods [ pod ];
  let _proc = Pod.spawn pod ~program:"test.dirtyhog" ~args in
  pod

let pod_node cluster id =
  match Pod.find id with
  | None -> -1
  | Some p ->
    (match Zapc_simnet.Fabric.node_of_ip (Cluster.fabric cluster) p.Pod.rip with
     | Some n -> n
     | None -> -1)

(* A quiescent pod (allocated, now sleeping) converges in at most two
   pre-copy rounds, lands on the destination with its working set intact,
   and its blackout beats a stop-and-copy of the same pod. *)
let migrate_quiescent_blackout ~max_rounds =
  let cluster = make_cluster ~nodes:2 () in
  let m = Cluster.metrics cluster in
  (* 256 x 256 KB = 64 MB working set: big enough that the image transfer
     and restore dominate the fixed costs, which is where pre-copy pays *)
  let pod =
    launch_hog cluster ~node_idx:0
      ~args:(hog_args ~regions:256 ~size:262_144 ~stride:0 ~period_us:0 ~loops:0)
  in
  Cluster.run_until cluster ~timeout:(Simtime.sec 5.0) (fun () ->
      has_log "dirtyhog ready");
  let r = Cluster.migrate_sync cluster ~pod ~dest_node:1 ?max_rounds:(Some max_rounds) in
  check tbool "migrate ok" true r.Manager.r_ok;
  check tint "pod lives on the destination" 1 (pod_node cluster pod.Pod.pod_id);
  (* working set survived the trip *)
  let pod' = Option.get (Pod.find pod.Pod.pod_id) in
  let mem_total =
    List.fold_left
      (fun acc (_, (p : Proc.t)) -> acc + Zapc_simos.Memory.total p.Proc.mem)
      0 (Pod.members pod')
  in
  check tint "working set intact" (256 * 262_144) mem_total;
  check tint "one migration succeeded" 1 (Zapc_obs.Metrics.counter m "mgr.mig.ok");
  (Zapc_obs.Metrics.hist_sum m "mig.rounds",
   Zapc_obs.Metrics.hist_sum m "mig.blackout_ms",
   Zapc_obs.Metrics.counter m "mig.forced_stops")

let test_live_migrate_quiescent () =
  let rounds, blackout_pc, forced = migrate_quiescent_blackout ~max_rounds:8 in
  check tbool "converged in at most 2 rounds" true (rounds >= 1.0 && rounds <= 2.0);
  check tint "no forced stop" 0 forced;
  check tbool "blackout recorded" true (blackout_pc > 0.0);
  (* same pod, same instant, stop-and-copy (round cap 0): the pre-copy
     blackout must be well under it — the full image travels while the pod
     still runs, and the prestaged restore skips the cold-start fixed cost *)
  let rounds0, blackout_sc, _ = migrate_quiescent_blackout ~max_rounds:0 in
  check tbool "cap 0 ships no pre-copy round" true (rounds0 = 0.0);
  check tbool
    (Printf.sprintf "pre-copy blackout (%.1f ms) < 50%% of stop-and-copy (%.1f ms)"
       blackout_pc blackout_sc)
    true
    (blackout_pc < 0.5 *. blackout_sc)

(* A pod dirtying its whole working set faster than the link can ship it
   never converges: the round cap forces the stop-and-copy, the operation
   still succeeds, and the forced stop is visible in the metrics. *)
let test_live_migrate_forced_stop () =
  let cluster = make_cluster ~nodes:2 () in
  let m = Cluster.metrics cluster in
  (* 16 x 128 KB = 2 MB, all of it rewritten every ~0.5 ms: a round's copy
     (~17 ms on the Gigabit fabric) always leaves 2 MB dirty again *)
  let pod =
    launch_hog cluster ~node_idx:0
      ~args:(hog_args ~regions:16 ~size:131_072 ~stride:16 ~period_us:500
               ~loops:100_000)
  in
  Cluster.run cluster ~until:(Simtime.ms 20) ();
  let r = Cluster.migrate_sync cluster ~pod ~dest_node:1 ~max_rounds:3 in
  check tbool "migrate ok despite non-convergence" true r.Manager.r_ok;
  check tint "forced stop counted" 1
    (Zapc_obs.Metrics.counter m "mig.forced_stops");
  check tbool "ran exactly the round cap" true
    (Zapc_obs.Metrics.hist_sum m "mig.rounds" = 3.0);
  check tint "pod lives on the destination" 1 (pod_node cluster pod.Pod.pod_id);
  (* bounded blackout: the forced stop-and-copy ships only the residue (one
     round's dirtying), not rounds x the working set *)
  let blackout = Zapc_obs.Metrics.hist_sum m "mig.blackout_ms" in
  check tbool "blackout bounded" true (blackout > 0.0 && blackout < 1000.0)

(* Round cap 0 degenerates to today's checkpoint-migrate-restart: no
   pre-copy round is ever sent, the destination pays the full cold-start
   restore, and the pod still arrives correctly. *)
let test_live_migrate_cap0_degenerates () =
  let cluster = make_cluster ~nodes:2 () in
  let m = Cluster.metrics cluster in
  let tr = Cluster.enable_trace cluster in
  let pod =
    launch_hog cluster ~node_idx:0
      ~args:(hog_args ~regions:8 ~size:65_536 ~stride:0 ~period_us:0 ~loops:0)
  in
  Cluster.run_until cluster ~timeout:(Simtime.sec 5.0) (fun () ->
      has_log "dirtyhog ready");
  let r = Cluster.migrate_sync cluster ~pod ~dest_node:1 ~max_rounds:0 in
  check tbool "migrate ok" true r.Manager.r_ok;
  check tint "no pre-copy round streamed" 0
    (Zapc_obs.Metrics.hist_count m "mig.bytes_per_round");
  check tbool "no mig_round trace event" true
    (not
       (List.exists
          (fun (e : Zapc.Trace.event) -> String.equal e.Zapc.Trace.ev_what "mig_round")
          (Zapc.Trace.events tr)));
  check tbool "commit reported zero rounds" true
    (Zapc_obs.Metrics.hist_count m "mig.rounds" = 1
     && Zapc_obs.Metrics.hist_sum m "mig.rounds" = 0.0);
  check tint "pod lives on the destination" 1 (pod_node cluster pod.Pod.pod_id)

(* Regression: Periodic and the Supervisor observe a migrated pod's new
   home atomically at the handoff.  An epoch that fires mid-migration is
   skipped (manager busy), the first epoch after the handoff checkpoints
   the pod exactly once on its NEW node, and the supervisor's watch set
   follows the pod. *)
let test_periodic_epoch_mid_migration () =
  let cluster = make_cluster ~nodes:3 () in
  let m = Cluster.metrics cluster in
  (* a working set big enough that the migration spans several epochs *)
  let pod =
    launch_hog cluster ~node_idx:0
      ~args:(hog_args ~regions:64 ~size:262_144 ~stride:4 ~period_us:400
               ~loops:100_000)
  in
  let svc =
    Zapc.Periodic.start cluster ~pods:[ pod ] ~prefix:"mg" ~period:(Simtime.ms 40)
      ~keep:2 ()
  in
  let sup = Zapc.Supervisor.start cluster svc in
  Cluster.run_until cluster ~timeout:(Simtime.sec 10.0) (fun () ->
      Zapc.Periodic.last_good svc >= 1
      && not (Manager.busy (Cluster.manager cluster)));
  check (Alcotest.list tint) "watching the source node" [ 0 ]
    (Zapc.Supervisor.watched sup);
  let skipped_before = Zapc.Periodic.skipped svc in
  let failed_before = Zapc_obs.Metrics.counter m "mgr.ckpt.failed" in
  (* async: the periodic service keeps ticking while the migration runs *)
  let result = ref None in
  Manager.migrate (Cluster.manager cluster) ~pod:pod.Pod.pod_id ~src_node:0
    ~dest_node:1 ~max_rounds:4 ~on_done:(fun r -> result := Some r);
  Cluster.run_until cluster ~timeout:(Simtime.sec 10.0) (fun () -> !result <> None);
  check tbool "migration ok" true (Option.get !result).Manager.r_ok;
  check tbool "mid-migration epochs were skipped, not misplaced" true
    (Zapc.Periodic.skipped svc > skipped_before);
  (match Zapc.Periodic.last_skip_reason svc with
   | Some "manager busy" -> ()
   | Some other -> Alcotest.fail ("unexpected skip reason: " ^ other)
   | None -> Alcotest.fail "skip reason not recorded");
  (* the supervisor's watch set followed the pod at the handoff *)
  check (Alcotest.list tint) "watching the destination node" [ 1 ]
    (Zapc.Supervisor.watched sup);
  (* the next epoch checkpoints the pod exactly once, on the new node *)
  let good = Zapc.Periodic.last_good svc in
  Cluster.run_until cluster ~timeout:(Simtime.sec 10.0) (fun () ->
      Zapc.Periodic.last_good svc > good
      && not (Manager.busy (Cluster.manager cluster)));
  check tint "no epoch targeted the stale source node" failed_before
    (Zapc_obs.Metrics.counter m "mgr.ckpt.failed");
  let epoch = Zapc.Periodic.last_good svc in
  let keys =
    List.filter
      (fun k ->
        let p = Printf.sprintf "mg.e%d." epoch in
        String.length k >= String.length p
        && String.equal (String.sub k 0 (String.length p)) p)
      (Zapc.Storage.keys (Cluster.storage cluster))
  in
  check tint "exactly one image per post-handoff epoch" 1 (List.length keys);
  Zapc.Supervisor.stop sup;
  Zapc.Periodic.stop svc

(* ------------------------------------------------------------------ *)
(* Hierarchical coordination (Params.tree_fanout > 0): the control plane
   fans out through a tree of per-node relays instead of N direct
   channels. *)

(* With a zero-cost control plane, command arrival instants are identical
   in both topologies, so the checkpoint captures the same pod state and
   the stored image bytes must match bit-for-bit. *)
let test_tree_snapshot_byte_identical () =
  let run fanout =
    let params =
      { Params.default with
        Params.ctrl_latency = Simtime.zero; ctrl_bps = 1e18;
        cost_jitter = 0.0; tree_fanout = fanout }
    in
    let cluster = make_cluster ~params ~nodes:6 () in
    let app =
      Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1; 2; 3 ]
        ~app_args:(bt_args 96 30) ()
    in
    Cluster.run cluster ~until:(Simtime.ms 5) ();
    let r = Cluster.snapshot cluster ~pods:app.Launch.pods ~key_prefix:"tf" in
    check tbool "snapshot ok" true r.Manager.r_ok;
    List.map
      (fun id ->
        let img =
          Option.get
            (Zapc.Storage.get (Cluster.storage cluster)
               (Printf.sprintf "tf.pod%d" id))
        in
        img.Zapc_ckpt.Image.encoded)
      (Launch.pod_ids app)
  in
  let flat = run 0 in
  let tree = run 2 in
  check tint "same pod count" (List.length flat) (List.length tree);
  List.iteri
    (fun i (a, b) ->
      check tbool (Printf.sprintf "pod %d image bytes identical" i) true
        (String.equal a b))
    (List.combine flat tree)

(* End-to-end through a depth-3 tree with real latencies and the serial
   per-message cost model on: snapshot over the tree, restart on different
   nodes, bit-identical result — and the traffic demonstrably flowed as
   batches through the relays. *)
let test_tree_checkpoint_restart () =
  let params =
    { Params.default with
      Params.tree_fanout = 2; ctrl_proc = Simtime.us 5; cost_jitter = 0.0 }
  in
  let cluster = make_cluster ~params ~nodes:9 () in
  let m = Cluster.metrics cluster in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 2; 5; 7; 8 ]
      ~app_args:(bt_args 96 30) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  let r = Cluster.snapshot cluster ~pods:app.Launch.pods ~key_prefix:"tr" in
  check tbool "snapshot ok" true r.Manager.r_ok;
  check tint "four stats" 4 (List.length r.Manager.r_stats);
  check tbool "commands left the root as batches" true
    (Zapc_obs.Metrics.counter m "mgr.tree.down_batches" > 0);
  check tbool "reports arrived aggregated" true
    (Zapc_obs.Metrics.counter m "mgr.tree.up_batches" > 0);
  check tbool "relays aggregated subtree reports" true
    (Zapc_obs.Metrics.counter m "relay.up_batches" > 0);
  ignore (Launch.wait_done cluster app);
  let reference = Option.get (find_log "bt_nas: checksum") in
  logged := [];
  let rr =
    Cluster.restart_app cluster ~pod_ids:(Launch.pod_ids app)
      ~target_nodes:[ 0; 1; 3; 4 ] ~key_prefix:"tr"
  in
  check tbool "restart ok" true rr.Manager.r_ok;
  let ranks = restarted_ranks (Launch.pod_ids app) "bt_nas" in
  check tint "all ranks restored" 4 (List.length ranks);
  Cluster.run_until cluster ~timeout:(Simtime.sec 1200.0) (fun () -> exited ranks);
  check tbool "same checksum" true (List.mem reference !logged)

(* Severing a mid-tree relay's uplink during a checkpoint orphans its whole
   subtree: the cascade must abort the deep agents too (their pods resume),
   the root sees the failure, and the application completes untouched.
   Fanout 2 over 7 nodes puts nodes 4 and 5 two hops down under node 1. *)
let test_tree_subtree_break_aborts () =
  let params =
    { Params.default with
      Params.tree_fanout = 2; phase_timeout = Simtime.ms 200; cost_jitter = 0.0 }
  in
  let cluster = make_cluster ~params ~nodes:7 () in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 4; 5 ]
      ~app_args:(bt_args 96 25) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  let result = ref None in
  let items =
    List.map
      (fun (p : Pod.t) ->
        { Manager.ci_node =
            (match Zapc_simnet.Fabric.node_of_ip (Cluster.fabric cluster) p.rip with
             | Some n -> n
             | None -> -1);
          ci_pod = p.pod_id; ci_dest = Protocol.U_storage "doomed" })
      app.Launch.pods
  in
  Manager.checkpoint (Cluster.manager cluster) ~items ~resume:true
    ~on_done:(fun r -> result := Some r);
  Engine.schedule (Cluster.engine cluster) ~delay:(Simtime.ms 20) (fun () ->
      Manager.break_channel (Cluster.manager cluster) ~node:1);
  Cluster.run_until cluster (fun () -> !result <> None);
  check tbool "operation failed" true (not (Option.get !result).Manager.r_ok);
  (* no orphaned frozen pods: everything below the severed hop resumed *)
  ignore (Launch.wait_done cluster app);
  check tbool "app completed after subtree abort" true (has_log "bt_nas: checksum")

let () =
  Alcotest.run "zapc"
    [ ( "coordinated",
        [ Alcotest.test_case "snapshot then continue" `Quick test_snapshot_then_continue;
          Alcotest.test_case "restart elsewhere, same result" `Quick
            test_restart_on_other_nodes_same_result;
          Alcotest.test_case "migration streaming" `Quick test_migration_streaming;
          Alcotest.test_case "ring topology restart" `Quick test_ring_restart;
          Alcotest.test_case "udp across checkpoint" `Quick test_udp_across_checkpoint;
          Alcotest.test_case "dual-cpu, two pods per node" `Quick
            test_two_pods_per_node_dual_cpu;
          Alcotest.test_case "double restart chain" `Quick test_double_restart_chain;
          Alcotest.test_case "restart with packet loss" `Quick
            test_restart_with_packet_loss;
          Alcotest.test_case "alarm + clock across restart" `Quick
            test_alarm_and_clock_across_restart;
          Alcotest.test_case "periodic service + recovery" `Quick
            test_periodic_service_recovery;
          Alcotest.test_case "periodic: recover without snapshot" `Quick
            test_periodic_recover_without_snapshot;
          Alcotest.test_case "periodic: skips while busy" `Quick
            test_periodic_skips_while_busy;
          Alcotest.test_case "periodic: skips unresolvable pod" `Quick
            test_periodic_skips_unresolvable_pod;
          Alcotest.test_case "incremental snapshot + restart" `Quick
            test_incremental_snapshot_and_restart;
          Alcotest.test_case "delta chain cap forces full" `Quick
            test_delta_chain_cap_forces_full;
          Alcotest.test_case "periodic: prunes to keep" `Quick
            test_periodic_prunes_to_keep;
          Alcotest.test_case "live migrate: quiescent converges" `Quick
            test_live_migrate_quiescent;
          Alcotest.test_case "live migrate: forced stop" `Quick
            test_live_migrate_forced_stop;
          Alcotest.test_case "live migrate: cap 0 degenerates" `Quick
            test_live_migrate_cap0_degenerates;
          Alcotest.test_case "periodic epoch mid-migration" `Quick
            test_periodic_epoch_mid_migration;
          Alcotest.test_case "gm (kernel-bypass) migration" `Quick
            test_gm_checkpoint_migration;
          Alcotest.test_case "N-to-M consolidation" `Quick test_n_to_m_consolidation ] );
      ( "protocol",
        [ Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "timing structure" `Quick test_checkpoint_timing_structure;
          Alcotest.test_case "figure-2 timeline" `Quick test_figure2_timeline;
          Alcotest.test_case "figure-2 from rendered timeline" `Quick
            test_rendered_timeline;
          Alcotest.test_case "serial ablation" `Quick test_serial_ablation_slower;
          Alcotest.test_case "agent failure aborts gracefully" `Quick
            test_manager_failure_aborts;
          Alcotest.test_case "checkpoint completes" `Quick
            test_checkpoint_completes_without_failure;
          Alcotest.test_case "control channel break" `Quick test_agent_channel_break;
          Alcotest.test_case "missing image fails cleanly" `Quick
            test_restart_missing_image_fails_cleanly ] );
      ( "tree",
        [ Alcotest.test_case "tree vs flat: byte-identical snapshot" `Quick
            test_tree_snapshot_byte_identical;
          Alcotest.test_case "checkpoint + restart through the tree" `Quick
            test_tree_checkpoint_restart;
          Alcotest.test_case "mid-tree break aborts the subtree" `Quick
            test_tree_subtree_break_aborts ] ) ]
