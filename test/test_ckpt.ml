(* Unit tests for the checkpoint layers: socket-state save/restore (the
   read-and-reinject extraction, the flawed peek baseline, overlap fix-up),
   meta-data classification and scheduling, and pod image round-trips. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Value = Zapc_codec.Value
module Addr = Zapc_simnet.Addr
module Fabric = Zapc_simnet.Fabric
module Netstack = Zapc_simnet.Netstack
module Socket = Zapc_simnet.Socket
module Sockbuf = Zapc_simnet.Sockbuf
module Sockopt = Zapc_simnet.Sockopt
module Tcp = Zapc_simnet.Tcp
module Errno = Zapc_simnet.Errno
module Kernel = Zapc_simos.Kernel
module Proc = Zapc_simos.Proc
module Program = Zapc_simos.Program
module Syscall = Zapc_simos.Syscall
module Namespace = Zapc_pod.Namespace
module Pod = Zapc_pod.Pod
module Meta = Zapc_netckpt.Meta
module Sock_state = Zapc_netckpt.Sock_state
module Net_ckpt = Zapc_netckpt.Net_ckpt
module Pod_ckpt = Zapc_ckpt.Pod_ckpt
module Image = Zapc_ckpt.Image
module Delta = Zapc_ckpt.Delta
module Memory = Zapc_simos.Memory
module Storage = Zapc.Storage

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

type env = {
  engine : Engine.t;
  fabric : Fabric.t;
  ns0 : Netstack.t;
  ns1 : Netstack.t;
  ip0 : Addr.ip;
  ip1 : Addr.ip;
}

let setup () =
  let engine = Engine.create ~seed:21 () in
  let fabric = Fabric.create engine in
  let ns0 = Netstack.create ~node:0 fabric in
  let ns1 = Netstack.create ~node:1 fabric in
  let ip0 = Addr.make_ip 172 16 0 1 and ip1 = Addr.make_ip 172 16 1 1 in
  Netstack.add_ip ns0 ip0;
  Netstack.add_ip ns1 ip1;
  { engine; fabric; ns0; ns1; ip0; ip1 }

let run env = Engine.run ~max_events:200_000 env.engine

let establish ?(port = 7100) env =
  let listener = Netstack.new_socket env.ns1 Socket.Stream in
  (match Netstack.bind env.ns1 listener { Addr.ip = env.ip1; port } with
   | Ok () -> ()
   | Error e -> Alcotest.failf "bind: %s" (Errno.to_string e));
  ignore (Netstack.listen env.ns1 listener 8);
  let client = Netstack.new_socket env.ns0 Socket.Stream in
  (match Netstack.connect_start env.ns0 client { Addr.ip = env.ip1; port } with
   | Ok () -> ()
   | Error e -> Alcotest.failf "connect: %s" (Errno.to_string e));
  run env;
  let server = Option.get (Netstack.accept_take listener) in
  (listener, client, server)

let plain_ns = Namespace.create ()

let recv_str s =
  match s.Socket.dispatch.d_recvmsg s Socket.plain_recv (1 lsl 20) with
  | Socket.Rv_data d -> d
  | _ -> "<none>"

(* --- overlap fix-up (Figure 4) --- *)

let test_trim_overlap () =
  check tstr "no overlap" "abcd" (Sock_state.trim_overlap ~acked:100 ~peer_recv:100 "abcd");
  check tstr "partial" "cd" (Sock_state.trim_overlap ~acked:100 ~peer_recv:102 "abcd");
  check tstr "all" "" (Sock_state.trim_overlap ~acked:100 ~peer_recv:104 "abcd");
  check tstr "beyond" "" (Sock_state.trim_overlap ~acked:100 ~peer_recv:200 "abcd");
  check tstr "negative clamps" "abcd" (Sock_state.trim_overlap ~acked:100 ~peer_recv:50 "abcd")

(* --- classification --- *)

let test_classify () =
  let env = setup () in
  let listener, client, server = establish env in
  check tbool "listener" true (Sock_state.classify listener = `Listener 8);
  check tbool "established full" true (Sock_state.classify client = `Conn Meta.Full);
  Tcp.shutdown_write client;
  check tbool "half out after shutdown" true
    (Sock_state.classify client = `Conn Meta.Half_out);
  run env;
  check tbool "peer half in" true (Sock_state.classify server = `Conn Meta.Half_in);
  let fresh = Netstack.new_socket env.ns0 Socket.Stream in
  check tbool "plain" true (Sock_state.classify fresh = `Plain);
  ignore (Netstack.connect_start env.ns0 fresh { Addr.ip = env.ip1; port = 7100 });
  check tbool "connecting" true (Sock_state.classify fresh = `Conn Meta.Connecting)

(* --- receive-queue extraction --- *)

let test_read_inject_preserves_data () =
  let env = setup () in
  let _, client, server = establish env in
  ignore (Tcp.send_data client "queued data");
  (match Tcp.send_oob client '?' with Ok () -> () | Error _ -> Alcotest.fail "oob");
  run env;
  let im = Sock_state.save ~ns:plain_ns server in
  check tstr "captured queue" "queued data" im.Sock_state.recv_data;
  check tbool "captured oob" true (im.Sock_state.oob = Some '?');
  (* read-inject: a continued run still reads the data, in order *)
  check tbool "interposed" true server.Socket.dispatch.interposed;
  check tstr "data intact for continued run" "queued data" (recv_str server);
  (* a second checkpoint right away captures the same bytes (from the alt
     queue this time) *)
  Socket.install_altqueue server "queued data";
  let im2 = Sock_state.save ~ns:plain_ns server in
  check tstr "second checkpoint sees same data" "queued data" im2.Sock_state.recv_data

let test_peek_mode_misses_oob () =
  let env = setup () in
  let _, client, server = establish env in
  ignore (Tcp.send_data client "visible");
  (match Tcp.send_oob client '!' with Ok () -> () | Error _ -> Alcotest.fail "oob");
  run env;
  let im = Sock_state.save ~mode:Sock_state.Peek ~ns:plain_ns server in
  (* the Cruz-style peek captures the stream but LOSES the urgent byte *)
  check tstr "stream captured" "visible" im.Sock_state.recv_data;
  check tbool "oob lost" true (im.Sock_state.oob = None);
  (* whereas the proper extraction gets both *)
  let im2 = Sock_state.save ~ns:plain_ns server in
  check tbool "read-inject captures oob" true (im2.Sock_state.oob = Some '!')

let test_send_queue_capture () =
  let env = setup () in
  let _, client, _server = establish env in
  (* block the peer so our sent data stays unacknowledged *)
  Zapc_simnet.Netfilter.block (Fabric.netfilter env.fabric) env.ip1;
  ignore (Tcp.send_data client "unacked payload");
  Engine.run ~until:(Simtime.add (Engine.now env.engine) (Simtime.ms 10)) env.engine;
  let im = Sock_state.save ~ns:plain_ns client in
  check tstr "send queue = acked..sent + unsent" "unacked payload" im.Sock_state.send_data;
  let tcb = Option.get client.Socket.tcb in
  check tbool "pcb numbers consistent" true
    (tcb.Socket.snd_nxt - tcb.Socket.snd_una = String.length "unacked payload")

let test_socket_image_roundtrip () =
  let env = setup () in
  let _, client, _ = establish env in
  ignore (Tcp.send_data client "x");
  run env;
  let im = Sock_state.save ~ns:plain_ns client in
  let v = Sock_state.to_value im in
  let im' = Sock_state.of_value v in
  check tbool "roundtrip" true (Value.equal v (Sock_state.to_value im'))

let test_restore_connection_applies_state () =
  let env = setup () in
  let _, client, server = establish env in
  Sockopt.set client.Socket.opts Sockopt.TCP_NODELAY 1;
  ignore (Tcp.send_data client "abc");
  run env;
  let im = Sock_state.save ~ns:plain_ns server in
  (* "re-establish" on a fresh pair and restore *)
  let _, c2, s2 = establish ~port:7200 env in
  Sock_state.restore_connection s2 im ~send_data:"resend me";
  run env;
  check tstr "altq data first" "abc" (recv_str s2);
  check tstr "resent send queue arrives at peer" "resend me" (recv_str c2);
  ignore client

(* --- meta / schedule --- *)

let mk_entry ~lip ~lport ~rip ~rport ~state ~role ~sent ~recv ~acked ~ref_ =
  { Meta.local = { Addr.ip = lip; port = lport };
    remote = { Addr.ip = rip; port = rport };
    state; role; sent; recv; acked; sock_ref = ref_ }

let test_schedule_pairing () =
  let via = 101 and vib = 102 in
  let ma =
    { Meta.pm_pod = 1; pm_vip = via;
      pm_entries =
        [ mk_entry ~lip:via ~lport:5000 ~rip:vib ~rport:33000 ~state:Meta.Full
            ~role:Meta.Accept ~sent:500 ~recv:200 ~acked:450 ~ref_:0 ] }
  in
  let mb =
    { Meta.pm_pod = 2; pm_vip = vib;
      pm_entries =
        [ mk_entry ~lip:vib ~lport:33000 ~rip:via ~rport:5000 ~state:Meta.Full
            ~role:Meta.Connect ~sent:200 ~recv:480 ~acked:180 ~ref_:0 ] }
  in
  let sched = Meta.build_schedule [ ma; mb ] in
  let ea = List.assoc 1 sched and eb = List.assoc 2 sched in
  (match (ea, eb) with
   | [ a ], [ b ] ->
     check tbool "a accepts" true (a.Meta.ri_role = Meta.Accept);
     check tbool "b connects" true (b.Meta.ri_role = Meta.Connect);
     check tbool "not orphans" true ((not a.Meta.ri_orphan) && not b.Meta.ri_orphan);
     (* each side gets the peer's recv for overlap trimming *)
     check tint "a sees b.recv" 480 a.Meta.ri_peer_recv;
     check tint "b sees a.recv" 200 b.Meta.ri_peer_recv
   | _ -> Alcotest.fail "wrong schedule shape")

let test_schedule_orphan_and_connecting () =
  let via = 101 and vib = 102 in
  let ma =
    { Meta.pm_pod = 1; pm_vip = via;
      pm_entries =
        [ mk_entry ~lip:via ~lport:5000 ~rip:vib ~rport:44000 ~state:Meta.Half_in
            ~role:Meta.Accept ~sent:10 ~recv:20 ~acked:10 ~ref_:0;
          mk_entry ~lip:via ~lport:39000 ~rip:vib ~rport:6000 ~state:Meta.Connecting
            ~role:Meta.Connect ~sent:0 ~recv:0 ~acked:0 ~ref_:1 ] }
  in
  (* pod 2 reports nothing: its endpoints are gone *)
  let mb = { Meta.pm_pod = 2; pm_vip = vib; pm_entries = [] } in
  let sched = Meta.build_schedule [ ma; mb ] in
  (match List.assoc 1 sched with
   | [ e ] ->
     check tbool "orphan" true e.Meta.ri_orphan;
     check tint "only non-connecting survive" 0 e.Meta.ri_sock_ref
   | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l))

let test_schedule_shared_source_port () =
  (* two connections born from the same listening socket on pod 1 port 5000:
     both must be re-accepted on pod 1's side (paper section 4) *)
  let via = 101 and vib = 102 and vic = 103 in
  let ma =
    { Meta.pm_pod = 1; pm_vip = via;
      pm_entries =
        [ mk_entry ~lip:via ~lport:5000 ~rip:vib ~rport:33001 ~state:Meta.Full
            ~role:Meta.Accept ~sent:1 ~recv:1 ~acked:1 ~ref_:0;
          mk_entry ~lip:via ~lport:5000 ~rip:vic ~rport:33002 ~state:Meta.Full
            ~role:Meta.Accept ~sent:2 ~recv:2 ~acked:2 ~ref_:1 ] }
  in
  let mb =
    { Meta.pm_pod = 2; pm_vip = vib;
      pm_entries =
        [ mk_entry ~lip:vib ~lport:33001 ~rip:via ~rport:5000 ~state:Meta.Full
            ~role:Meta.Connect ~sent:1 ~recv:1 ~acked:1 ~ref_:0 ] }
  in
  let mc =
    { Meta.pm_pod = 3; pm_vip = vic;
      pm_entries =
        [ mk_entry ~lip:vic ~lport:33002 ~rip:via ~rport:5000 ~state:Meta.Full
            ~role:Meta.Connect ~sent:1 ~recv:1 ~acked:1 ~ref_:0 ] }
  in
  let sched = Meta.build_schedule [ ma; mb; mc ] in
  List.iter
    (fun e -> check tbool "pod1 accepts all" true (e.Meta.ri_role = Meta.Accept))
    (List.assoc 1 sched);
  List.iter
    (fun e -> check tbool "peers connect" true (e.Meta.ri_role = Meta.Connect))
    (List.assoc 2 sched @ List.assoc 3 sched)

let test_meta_value_roundtrip () =
  let m =
    { Meta.pm_pod = 9; pm_vip = 170;
      pm_entries =
        [ mk_entry ~lip:170 ~lport:1 ~rip:171 ~rport:2 ~state:Meta.Closed_data
            ~role:Meta.Connect ~sent:11 ~recv:22 ~acked:33 ~ref_:4 ] }
  in
  let v = Meta.to_value m in
  let m' = Meta.of_value v in
  check tbool "roundtrip" true (Value.equal v (Meta.to_value m'))

(* --- pod-level image --- *)

module Memhog = struct
  type state = int

  let name = "ckpttest.memhog"
  let start _ = 0

  let step phase (_ : Syscall.outcome) =
    match phase with
    | 0 -> (1, Zapc_simos.Program.Sys (Syscall.Mem_alloc ("big", 1_000_000)))
    | 1 -> (2, Zapc_simos.Program.Sys (Syscall.Nanosleep (Simtime.sec 50.0)))
    | _ -> (2, Zapc_simos.Program.Exit 0)

  let to_value p = Value.Int p
  let of_value = Value.to_int
end

(* Exits almost immediately: left unreaped it sits in the pod as a zombie,
   which a checkpoint must record and a restore must re-create as one. *)
module Exiter = struct
  type state = int

  let name = "ckpttest.exiter"
  let start _ = 0

  let step phase (_ : Syscall.outcome) =
    match phase with
    | 0 -> (1, Zapc_simos.Program.Compute 1_000)
    | _ -> (1, Zapc_simos.Program.Exit 7)

  let to_value p = Value.Int p
  let of_value = Value.to_int
end

(* Creates a pipe, writes into it, then sleeps holding both ends. *)
module Piper = struct
  type state = { mutable ph : int; mutable rfd : int; mutable wfd : int }

  let name = "ckpttest.piper"
  let start _ = { ph = 0; rfd = -1; wfd = -1 }

  let step s (outcome : Syscall.outcome) =
    match (s.ph, outcome) with
    | 0, _ ->
      s.ph <- 1;
      (s, Zapc_simos.Program.Sys Syscall.Pipe)
    | 1, Syscall.Ret (Syscall.Rpair (r, w)) ->
      s.rfd <- r;
      s.wfd <- w;
      s.ph <- 2;
      (s, Zapc_simos.Program.Sys (Syscall.Write (w, "pipe-payload")))
    | 2, _ ->
      s.ph <- 3;
      (s, Zapc_simos.Program.Sys (Syscall.Nanosleep (Simtime.sec 50.0)))
    | _, _ -> (s, Zapc_simos.Program.Exit 0)

  let to_value s =
    Value.assoc
      [ ("ph", Value.int s.ph); ("rfd", Value.int s.rfd); ("wfd", Value.int s.wfd) ]

  let of_value v =
    { ph = Value.to_int (Value.field "ph" v);
      rfd = Value.to_int (Value.field "rfd" v);
      wfd = Value.to_int (Value.field "wfd" v) }
end

let () = Program.register_if_absent (module Memhog : Program.S)
let () = Program.register_if_absent (module Exiter : Program.S)
let () = Program.register_if_absent (module Piper : Program.S)

let test_pod_checkpoint_image () =
  let engine = Engine.create ~seed:9 () in
  let fabric = Fabric.create engine in
  let k = Kernel.create ~node_id:0 fabric in
  let pod =
    Pod.create ~pod_id:77 ~name:"imgtest" ~vip:(Addr.make_ip 10 1 0 9)
      ~rip:(Addr.make_ip 172 16 0 9) k
  in
  let p = Pod.spawn pod ~program:"ckpttest.memhog" ~args:Value.Unit in
  Engine.run ~until:(Simtime.ms 5) ~max_events:10000 engine;
  Pod.suspend pod;
  let res = Pod_ckpt.checkpoint pod in
  check tint "memory accounted" 1_000_000 res.Pod_ckpt.memory_bytes;
  check tint "one process" 1 res.Pod_ckpt.proc_count;
  check tbool "logical size > memory" true (Pod_ckpt.logical_size res > 1_000_000);
  (* serialize / reload *)
  let img = Image.of_pod_image res.Pod_ckpt.image in
  let v = Image.to_pod_image img in
  check tint "pod id" 77 (Pod_ckpt.pod_id_of_image v);
  check tstr "name" "imgtest" (Pod_ckpt.name_of_image v);
  (* restore into a fresh pod on a different kernel *)
  let k2 = Kernel.create ~node_id:1 fabric in
  let pod2 =
    Pod.create ~pod_id:78 ~name:"imgtest" ~vip:(Addr.make_ip 10 1 0 9)
      ~rip:(Addr.make_ip 172 16 1 9) k2
  in
  let procs = Pod_ckpt.restore_processes pod2 v ~socket_of_ref:(fun _ -> None) in
  (match procs with
   | [ p2 ] ->
     check tbool "restored stopped" true (p2.Proc.rstate = Proc.Stopped);
     check tbool "pending syscall restored" true
       (match p2.Proc.pending_sys with Some (Syscall.Nanosleep _) -> true | _ -> false);
     check tint "memory restored" 1_000_000 (Zapc_simos.Memory.total p2.Proc.mem);
     check tbool "vpid preserved" true
       (Namespace.vpid_of_rpid pod2.Pod.ns p2.Proc.pid = Some 1);
     (* resume: the restored process finishes its sleep then exits *)
     Pod.resume pod2;
     Engine.run ~max_events:500_000 engine;
     check tbool "runs to completion" true (p2.Proc.exit_code = Some 0)
   | _ -> Alcotest.fail "expected one restored process");
  ignore p

let test_block_deadline_relative () =
  (* a process checkpointed mid-sleep resumes with the *remaining* time *)
  let engine = Engine.create ~seed:9 () in
  let fabric = Fabric.create engine in
  let k = Kernel.create ~node_id:0 fabric in
  let pod =
    Pod.create ~pod_id:79 ~name:"sleepy" ~vip:(Addr.make_ip 10 1 0 8)
      ~rip:(Addr.make_ip 172 16 0 8) k
  in
  let _p = Pod.spawn pod ~program:"ckpttest.memhog" ~args:Value.Unit in
  (* memhog sleeps 50 s; checkpoint at 10 s *)
  Engine.run ~until:(Simtime.sec 10.0) ~max_events:100000 engine;
  Pod.suspend pod;
  let res = Pod_ckpt.checkpoint pod in
  let v = res.Pod_ckpt.image in
  let proc_v = List.hd (Value.to_list (fun x -> x) (Value.field "procs" v)) in
  (match Value.to_option Value.to_int (Value.field "block_remaining" proc_v) with
   | Some rem ->
     check tbool "remaining ~40s" true
       (rem > Simtime.sec 39.0 && rem <= Simtime.sec 41.0)
   | None -> Alcotest.fail "no block deadline saved")

(* --- restore-path regression: zombies --- *)

(* Pre-fix, the checkpoint silently dropped zombie processes (the image had
   one proc instead of two) and a restore could never re-create one; a
   parent blocked in waitpid would then hang forever after restart. *)
let test_zombie_survives_restart () =
  let engine = Engine.create ~seed:11 () in
  let fabric = Fabric.create engine in
  let k = Kernel.create ~node_id:0 fabric in
  let pod =
    Pod.create ~pod_id:81 ~name:"zpod" ~vip:(Addr.make_ip 10 1 0 11)
      ~rip:(Addr.make_ip 172 16 0 11) k
  in
  let _sleeper = Pod.spawn pod ~program:"ckpttest.memhog" ~args:Value.Unit in
  let child = Pod.spawn pod ~program:"ckpttest.exiter" ~args:Value.Unit in
  Engine.run ~until:(Simtime.ms 5) ~max_events:10_000 engine;
  check tbool "child is a zombie" true (child.Proc.rstate = Proc.Zombie);
  check tint "zombie excluded from live members" 1 (Pod.member_count pod);
  Pod.suspend pod;
  let res = Pod_ckpt.checkpoint pod in
  check tint "image records both processes" 2
    (List.length (Value.to_list (fun x -> x) (Value.field "procs" res.Pod_ckpt.image)));
  let v = Image.to_pod_image (Image.of_pod_image res.Pod_ckpt.image) in
  let k2 = Kernel.create ~node_id:1 fabric in
  let pod2 =
    Pod.create ~pod_id:82 ~name:"zpod" ~vip:(Addr.make_ip 10 1 0 11)
      ~rip:(Addr.make_ip 172 16 1 11) k2
  in
  let procs = Pod_ckpt.restore_processes pod2 v ~socket_of_ref:(fun _ -> None) in
  check tint "both processes restored" 2 (List.length procs);
  let z = List.find (fun (p : Proc.t) -> p.Proc.rstate = Proc.Zombie) procs in
  check tbool "zombie exit code preserved" true (z.Proc.exit_code = Some 7);
  check tint "restored zombie off the run queue" 1 (Pod.member_count pod2);
  Pod.resume pod2;
  Engine.run ~max_events:500_000 engine;
  let live = List.find (fun (p : Proc.t) -> p != z) procs in
  check tbool "survivor completes after resume" true (live.Proc.exit_code = Some 0);
  check tbool "zombie never re-ran" true (z.Proc.exit_code = Some 7)

(* --- restore-path regression: pipe identifiers --- *)

let pipe_ids_of procs =
  List.concat_map
    (fun (p : Proc.t) ->
      Zapc_simos.Fdtable.fold p.Proc.fds
        (fun _ e acc ->
          match e with
          | Zapc_simos.Fdtable.Fpipe_r pi | Zapc_simos.Fdtable.Fpipe_w pi ->
            pi.Zapc_simos.Pipe.id :: acc
          | Zapc_simos.Fdtable.Fsock _ | Zapc_simos.Fdtable.Fgm _ -> acc)
        [])
    procs

(* Pre-fix, restore numbered pipes 0,1,... from the image-local index, so
   two pods restored onto one node got colliding kernel pipe ids (and new
   pipes created after restore collided with restored ones). *)
let test_restored_pipe_ids_unique () =
  let engine = Engine.create ~seed:12 () in
  let fabric = Fabric.create engine in
  let k = Kernel.create ~node_id:0 fabric in
  let mk kernel id name sub =
    Pod.create ~pod_id:id ~name ~vip:(Addr.make_ip 10 1 0 sub)
      ~rip:(Addr.make_ip 172 16 sub id) kernel
  in
  let pa = mk k 83 "pipeA" 0 and pb = mk k 84 "pipeB" 0 in
  ignore (Pod.spawn pa ~program:"ckpttest.piper" ~args:Value.Unit);
  ignore (Pod.spawn pb ~program:"ckpttest.piper" ~args:Value.Unit);
  Engine.run ~until:(Simtime.ms 5) ~max_events:10_000 engine;
  Pod.suspend pa;
  Pod.suspend pb;
  let ia = Image.to_pod_image (Image.of_pod_image (Pod_ckpt.checkpoint pa).Pod_ckpt.image) in
  let ib = Image.to_pod_image (Image.of_pod_image (Pod_ckpt.checkpoint pb).Pod_ckpt.image) in
  (* restore both pods onto ONE destination node *)
  let k2 = Kernel.create ~node_id:1 fabric in
  let ra = mk k2 93 "pipeA" 1 and rb = mk k2 94 "pipeB" 1 in
  let procs_a = Pod_ckpt.restore_processes ra ia ~socket_of_ref:(fun _ -> None) in
  let procs_b = Pod_ckpt.restore_processes rb ib ~socket_of_ref:(fun _ -> None) in
  let ids = List.sort_uniq Int.compare (pipe_ids_of procs_a @ pipe_ids_of procs_b) in
  (* one pipe per pod (each referenced by two fds): two distinct kernel ids *)
  check tint "distinct kernel pipe ids" 2 (List.length ids);
  (* the allocator advanced past the restored ids: a new pipe cannot collide *)
  check tbool "fresh id collides with nothing" true
    (not (List.mem (Kernel.alloc_pipe_id k2) ids))

(* --- dirty-region tracking --- *)

let test_memory_dirty_tracking () =
  let m = Memory.create () in
  Memory.alloc m "a" 100;
  Memory.alloc m "b" 50;
  check tint "everything dirty after alloc" 150 (Memory.dirty_bytes m);
  Memory.clear_dirty m;
  check tint "clean after clear" 0 (Memory.dirty_bytes m);
  let v0 = Memory.version m in
  Memory.touch m "a";
  check tint "touch marks the region" 100 (Memory.dirty_bytes m);
  check tbool "touch bumps version" true (Memory.version m > v0);
  Memory.touch m "nonexistent";
  check tint "unknown touch ignored" 100 (Memory.dirty_bytes m);
  Memory.free m "b";
  check tint "freed region contributes nothing" 100 (Memory.dirty_bytes m);
  check tbool "the free itself is recorded" true
    (Memory.dirty_regions m = [ "a"; "b" ]);
  Memory.alloc m "a" 120;
  check tint "resize accounted" 120 (Memory.dirty_bytes m)

(* --- delta chains in storage --- *)

(* One pod checkpointed at three instants; full at t1, deltas at t2/t3. *)
let delta_env () =
  let engine = Engine.create ~seed:13 () in
  let fabric = Fabric.create engine in
  let k = Kernel.create ~node_id:0 fabric in
  let pod =
    Pod.create ~pod_id:85 ~name:"deltapod" ~vip:(Addr.make_ip 10 1 0 14)
      ~rip:(Addr.make_ip 172 16 0 14) k
  in
  ignore (Pod.spawn pod ~program:"ckpttest.memhog" ~args:Value.Unit);
  let storage = Storage.create engine in
  let snap at =
    Engine.run ~until:at ~max_events:100_000 engine;
    Pod.suspend pod;
    let res = Pod_ckpt.checkpoint pod in
    Pod.resume pod;
    res
  in
  (engine, pod, storage, snap)

let test_delta_chain_byte_identity () =
  let _, pod, storage, snap = delta_env () in
  let r1 = snap (Simtime.ms 5) in
  (match Storage.put storage "base" (Image.of_pod_image r1.Pod_ckpt.image) with
   | Ok () -> Pod_ckpt.clear_memory_dirty pod
   | Error e -> Alcotest.failf "put base: %s" e);
  let r2 = snap (Simtime.ms 10) in
  let full2 = Image.of_pod_image r2.Pod_ckpt.image in
  let d12 =
    Delta.make ~base_key:"base" ~base:r1.Pod_ckpt.image ~full:r2.Pod_ckpt.image
      ~dirty_bytes:(Pod_ckpt.dirty_memory_bytes pod)
  in
  let di12 = Image.of_pod_image d12 in
  check tbool "image recognized as delta" true (di12.Image.base_key = Some "base");
  (* the sleeping memhog never re-touches its region: the delta carries the
     changed process records but none of the 1 MB address space *)
  check tbool "delta is much smaller than the full" true
    (di12.Image.logical_size * 2 <= full2.Image.logical_size);
  (match Storage.put storage "d1" di12 with Ok () -> () | Error e -> Alcotest.failf "put d1: %s" e);
  (* materialization is byte-identical to the full image at the same instant *)
  (match Storage.get storage "d1" with
   | None -> Alcotest.fail "delta did not materialize"
   | Some img ->
     check tbool "value identical" true
       (Value.equal (Image.to_pod_image img) r2.Pod_ckpt.image);
     check tstr "wire bytes identical" full2.Image.encoded img.Image.encoded;
     check tint "logical size identical" full2.Image.logical_size img.Image.logical_size);
  (* chain one more link and check the whole chain still materializes *)
  Pod_ckpt.clear_memory_dirty pod;
  let r3 = snap (Simtime.ms 15) in
  let d23 =
    Delta.make ~base_key:"d1" ~base:r2.Pod_ckpt.image ~full:r3.Pod_ckpt.image
      ~dirty_bytes:(Pod_ckpt.dirty_memory_bytes pod)
  in
  (match Storage.put storage "d2" (Image.of_pod_image d23) with
   | Ok () -> () | Error e -> Alcotest.failf "put d2: %s" e);
  check tbool "chain structure visible" true (Storage.base_key storage "d2" = Some "d1");
  (match Storage.get storage "d2" with
   | None -> Alcotest.fail "two-link chain did not materialize"
   | Some img ->
     check tstr "two-link chain byte-identical"
       (Image.of_pod_image r3.Pod_ckpt.image).Image.encoded img.Image.encoded)

let test_delta_chain_corruption_and_gc () =
  let _, pod, storage, snap = delta_env () in
  let r1 = snap (Simtime.ms 5) in
  ignore (Storage.put storage "base" (Image.of_pod_image r1.Pod_ckpt.image));
  Pod_ckpt.clear_memory_dirty pod;
  let r2 = snap (Simtime.ms 10) in
  let d12 =
    Delta.make ~base_key:"base" ~base:r1.Pod_ckpt.image ~full:r2.Pod_ckpt.image
      ~dirty_bytes:(Pod_ckpt.dirty_memory_bytes pod)
  in
  ignore (Storage.put storage "d1" (Image.of_pod_image d12));
  Pod_ckpt.clear_memory_dirty pod;
  let r3 = snap (Simtime.ms 15) in
  let d23 =
    Delta.make ~base_key:"d1" ~base:r2.Pod_ckpt.image ~full:r3.Pod_ckpt.image
      ~dirty_bytes:(Pod_ckpt.dirty_memory_bytes pod)
  in
  ignore (Storage.put storage "d2" (Image.of_pod_image d23));
  let want = (Image.of_pod_image r3.Pod_ckpt.image).Image.encoded in
  (* corrupt the PRIMARY copy of the middle link: every read of the chain
     must fall back to the healthy replica and still materialize exactly *)
  check tbool "corrupt middle link primary" true (Storage.corrupt storage ~replica:0 "d1");
  (match Storage.get storage "d2" with
   | None -> Alcotest.fail "chain must survive a corrupt primary"
   | Some img -> check tstr "replica fallback byte-identical" want img.Image.encoded);
  check tbool "corruption was detected" true (Storage.corruption_detected storage > 0);
  (* kill the last healthy copy of the middle link: the chain is broken *)
  check tbool "corrupt middle link replica" true (Storage.corrupt storage ~replica:1 "d1");
  check tbool "broken chain yields no image" true (Storage.get storage "d2" = None);
  (* GC safety: removing a pinned base hides it but keeps the chain readable *)
  let _, pod2, storage2, snap2 =
    let e = delta_env () in
    e
  in
  let s1 = snap2 (Simtime.ms 5) in
  ignore (Storage.put storage2 "base" (Image.of_pod_image s1.Pod_ckpt.image));
  Pod_ckpt.clear_memory_dirty pod2;
  let s2 = snap2 (Simtime.ms 10) in
  let sd =
    Delta.make ~base_key:"base" ~base:s1.Pod_ckpt.image ~full:s2.Pod_ckpt.image
      ~dirty_bytes:(Pod_ckpt.dirty_memory_bytes pod2)
  in
  ignore (Storage.put storage2 "d1" (Image.of_pod_image sd));
  Storage.remove storage2 "base";
  check tbool "condemned base hidden from the namespace" true
    (not (List.mem "base" (Storage.keys storage2)));
  check tbool "condemned base no longer gettable" true (Storage.get storage2 "base" = None);
  (match Storage.get storage2 "d1" with
   | None -> Alcotest.fail "chain over a condemned base must stay readable"
   | Some img ->
     check tstr "still byte-identical" (Image.of_pod_image s2.Pod_ckpt.image).Image.encoded
       img.Image.encoded);
  (* deleting the last referencing delta reclaims the base's bytes *)
  Storage.remove storage2 "d1";
  check tbool "cascade reclaimed everything" true (Storage.keys storage2 = [])

(* --- live-migration pre-copy properties --------------------------------
   The destination of a live migration folds round deltas over the round-0
   full image and finally the stop-and-copy residue (Agent.receive_mig_round
   / receive_mig_final).  Whatever the touch pattern, that composition must
   be Value- and byte-identical to a plain stop-and-copy image taken at the
   final instant; and when the dirty rate decays, the per-round residue must
   shrink monotonically. *)

let mig_pod_seq = ref 9000

let precopy_env () =
  incr mig_pod_seq;
  let engine = Engine.create ~seed:!mig_pod_seq () in
  let fabric = Fabric.create engine in
  let k = Kernel.create ~node_id:0 fabric in
  let pod =
    Pod.create ~pod_id:!mig_pod_seq ~name:"migpod" ~vip:(Addr.make_ip 10 1 0 21)
      ~rip:(Addr.make_ip 172 16 0 21) k
  in
  ignore (Pod.spawn pod ~program:"ckpttest.memhog" ~args:Value.Unit);
  Engine.run ~until:(Simtime.ms 2) ~max_events:100_000 engine;
  (engine, pod)

let proc_mem pod =
  match Pod.members pod with
  | (_, (p : Proc.t)) :: _ -> p.Proc.mem
  | [] -> Alcotest.fail "pod has no live process"

let region i = Printf.sprintf "r%d" i

(* Emulate one source-side pre-copy round: capture the running pod, clear
   the dirty set (capture-and-clear, as Agent.mig_round does), diff against
   the previous capture. *)
let capture_round pod ~last =
  let r = Pod_ckpt.checkpoint ~mode:Sock_state.Peek pod in
  let dirty = Pod_ckpt.snapshot_memory_dirty pod in
  let d = Delta.make ~base_key:"mig" ~base:last ~full:r.Pod_ckpt.image ~dirty_bytes:dirty in
  (r.Pod_ckpt.image, d)

let precopy_case_gen =
  let open QCheck.Gen in
  let sizes = list_size (int_range 2 6) (int_range 1_000 80_000) in
  (* (region index, new size); size 0 = touch without resizing *)
  let touch = pair (int_bound 7) (oneof [ return 0; int_range 500 60_000 ]) in
  let round = list_size (int_range 0 5) touch in
  pair sizes (list_size (int_range 1 4) round)

let prop_precopy_composition_identity =
  QCheck.Test.make ~name:"pre-copy composition is byte-identical to stop-and-copy"
    ~count:60 (QCheck.make precopy_case_gen) (fun (sizes, rounds) ->
      let engine, pod = precopy_env () in
      let mem = proc_mem pod in
      let sizes = Array.of_list sizes in
      Array.iteri (fun i sz -> Memory.alloc mem (region i) sz) sizes;
      (* round 0 ships the full image of the running pod *)
      let r0 = Pod_ckpt.checkpoint ~mode:Sock_state.Peek pod in
      ignore (Pod_ckpt.snapshot_memory_dirty pod);
      let staged = ref r0.Pod_ckpt.image in
      let last = ref r0.Pod_ckpt.image in
      List.iteri
        (fun k touches ->
          Engine.run ~until:(Simtime.ms (4 + k)) ~max_events:100_000 engine;
          List.iter
            (fun (i, sz) ->
              let name = region (i mod Array.length sizes) in
              if sz = 0 then Memory.touch mem name else Memory.alloc mem name sz)
            touches;
          let image, d = capture_round pod ~last:!last in
          staged := Delta.apply ~base:!staged d;
          last := image)
        rounds;
      (* the final stop-and-copy: residue of the now-suspended pod *)
      Pod.suspend pod;
      let rf = Pod_ckpt.checkpoint pod in
      let residue =
        Delta.make ~base_key:"mig" ~base:!last ~full:rf.Pod_ckpt.image
          ~dirty_bytes:(Pod_ckpt.dirty_memory_bytes pod)
      in
      let final = Delta.apply ~base:!staged residue in
      let want = Image.of_pod_image rf.Pod_ckpt.image in
      let got = Image.of_pod_image final in
      Value.equal final rf.Pod_ckpt.image
      && String.equal want.Image.encoded got.Image.encoded
      && Image.checksum want = Image.checksum got)

let prop_precopy_residue_monotone =
  QCheck.Test.make ~name:"residue shrinks monotonically under a decaying dirty rate"
    ~count:40
    (QCheck.make QCheck.Gen.(pair (int_range 8 16) (int_range 4_000 40_000)))
    (fun (nregions, size) ->
      let engine, pod = precopy_env () in
      let mem = proc_mem pod in
      for i = 0 to nregions - 1 do
        Memory.alloc mem (region i) size
      done;
      let r0 = Pod_ckpt.checkpoint ~mode:Sock_state.Peek pod in
      ignore (Pod_ckpt.snapshot_memory_dirty pod);
      let last = ref r0.Pod_ckpt.image in
      let residues = ref [] in
      (* round k re-touches nregions / 2^k regions: a decaying dirty rate *)
      let touched = ref nregions in
      for k = 1 to 4 do
        touched := Stdlib.max 1 (!touched / 2);
        Engine.run ~until:(Simtime.ms (2 + k)) ~max_events:100_000 engine;
        for i = 0 to !touched - 1 do
          Memory.touch mem (region i)
        done;
        let image, d = capture_round pod ~last:!last in
        residues := (Image.of_pod_image d).Image.logical_size :: !residues;
        last := image
      done;
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a >= b && non_increasing rest
        | _ -> true
      in
      non_increasing (List.rev !residues))

(* --- storage backends: COW shadows, heal re-replication, dedup, buddy --- *)

module Metrics = Zapc_obs.Metrics
module ZParams = Zapc.Params
module Chunk = Zapc_ckpt.Chunk
module Compress = Zapc_ckpt.Compress

(* delta_env with a readable metrics registry and a configurable backend. *)
let delta_env_m ?backend ?compress ?replicas ?nodes () =
  let engine = Engine.create ~seed:13 () in
  let fabric = Fabric.create engine in
  let k = Kernel.create ~node_id:0 fabric in
  let pod =
    Pod.create ~pod_id:85 ~name:"deltapod" ~vip:(Addr.make_ip 10 1 0 14)
      ~rip:(Addr.make_ip 172 16 0 14) k
  in
  ignore (Pod.spawn pod ~program:"ckpttest.memhog" ~args:Value.Unit);
  let metrics = Metrics.create () in
  let storage = Storage.create ~metrics ?backend ?compress ?replicas ?nodes engine in
  let snap at =
    Engine.run ~until:at ~max_events:100_000 engine;
    Pod.suspend pod;
    let res = Pod_ckpt.checkpoint pod in
    Pod.resume pod;
    res
  in
  (engine, pod, storage, metrics, snap)

(* Regression (storage bugfix 1): overwriting a key that live deltas are
   pinned on must not swap the bytes their chains resolve against.  Pre-fix,
   [put] replaced the stored bytes in place and [get] of the delta
   materialized a WRONG image with a valid per-link checksum. *)
let test_overwrite_pinned_base_cow () =
  let _, pod, storage, metrics, snap = delta_env_m () in
  let r1 = snap (Simtime.ms 5) in
  ignore (Storage.put storage "base" (Image.of_pod_image r1.Pod_ckpt.image));
  Pod_ckpt.clear_memory_dirty pod;
  let r2 = snap (Simtime.ms 10) in
  let want = (Image.of_pod_image r2.Pod_ckpt.image).Image.encoded in
  let d12 =
    Delta.make ~base_key:"base" ~base:r1.Pod_ckpt.image ~full:r2.Pod_ckpt.image
      ~dirty_bytes:(Pod_ckpt.dirty_memory_bytes pod)
  in
  ignore (Storage.put storage "d1" (Image.of_pod_image d12));
  (* overwrite the pinned base with a later full image *)
  Pod_ckpt.clear_memory_dirty pod;
  let r3 = snap (Simtime.ms 15) in
  let r3_bytes = (Image.of_pod_image r3.Pod_ckpt.image).Image.encoded in
  ignore (Storage.put storage "base" (Image.of_pod_image r3.Pod_ckpt.image));
  check tbool "old base kept under a COW shadow" true
    (Metrics.counter metrics "storage.cow_preserved" = 1);
  (match Storage.get storage "d1" with
   | None -> Alcotest.fail "chain must survive its base being overwritten"
   | Some img ->
     check tstr "delta still materializes the ORIGINAL bytes" want
       img.Image.encoded);
  (match Storage.get storage "base" with
   | None -> Alcotest.fail "overwritten base must be readable"
   | Some img -> check tstr "public key serves the new bytes" r3_bytes img.Image.encoded);
  (* dropping the last referencing delta reclaims the shadow *)
  Storage.remove storage "d1";
  check tbool "namespace: only base remains" true (Storage.keys storage = [ "base" ]);
  (match Storage.get storage "base" with
   | Some img -> check tstr "base unaffected by shadow GC" r3_bytes img.Image.encoded
   | None -> Alcotest.fail "base lost by shadow GC")

(* Regression (storage bugfix 3): a copy skipped by a per-replica outage
   during [put] must be backfilled by [heal_replicas].  Pre-fix, heal only
   cleared the outage flag and the key ran below its replication factor
   forever — a later primary outage then lost the only copy. *)
let test_heal_rereplicates () =
  let _, pod, storage, metrics, snap = delta_env_m () in
  let r1 = snap (Simtime.ms 5) in
  ignore (Storage.put storage "k0" (Image.of_pod_image r1.Pod_ckpt.image));
  check tbool "k0 on both replicas" true
    (Storage.replica_has storage ~replica:0 "k0"
     && Storage.replica_has storage ~replica:1 "k0");
  Storage.set_replica_fail storage ~replica:1 (Some "outage");
  Pod_ckpt.clear_memory_dirty pod;
  let r2 = snap (Simtime.ms 10) in
  let want = (Image.of_pod_image r2.Pod_ckpt.image).Image.encoded in
  ignore (Storage.put storage "k1" (Image.of_pod_image r2.Pod_ckpt.image));
  check tbool "outaged replica missed the put" true
    (not (Storage.replica_has storage ~replica:1 "k1"));
  Storage.heal_replicas storage;
  check tbool "heal backfilled the missing copy" true
    (Storage.replica_has storage ~replica:1 "k1");
  check tbool "re-replication counted" true
    (Metrics.counter metrics "storage.rereplicated" >= 1);
  (* the backfilled copy is a real copy: it alone can serve the key *)
  Storage.set_replica_fail storage ~replica:0 (Some "down");
  (match Storage.get storage "k1" with
   | None -> Alcotest.fail "backfilled replica must serve the read"
   | Some got -> check tstr "byte-identical from the backfill" want got.Image.encoded)

(* Hand-rolled full image with explicit region tags, for dedup tests:
   sibling ranks declare the same regions, so their chunks share
   addresses. *)
let mk_img ?(regions = []) ~pod_id ~name ~mem () =
  Image.of_pod_image
    (Value.assoc
       [ ("pod_id", Value.int pod_id); ("name", Value.str name);
         ("memory_bytes", Value.int mem);
         ("procs",
          Value.list
            (fun x -> x)
            [ Value.assoc
                [ ("mem",
                   Value.Assoc
                     (List.map
                        (fun (n, s, g) ->
                          (n, Value.List [ Value.Int s; Value.Int g ]))
                        regions)) ] ]) ])

(* Dedup-aware pin/condemn GC: removing one sibling's epoch must not free
   chunks shared with another sibling. *)
let test_dedup_sibling_gc () =
  let engine = Engine.create ~seed:7 () in
  let metrics = Metrics.create () in
  let storage = Storage.create ~metrics ~backend:ZParams.Sb_dedup engine in
  let mb = 1 lsl 20 in
  let regions = [ ("bt.rss", mb, 1) ] in
  let a = mk_img ~regions ~pod_id:1 ~name:"rank0" ~mem:mb () in
  let b = mk_img ~regions ~pod_id:2 ~name:"rank1" ~mem:mb () in
  ignore (Storage.put storage "e0.pod1" a);
  let unique_a = Metrics.counter metrics "storage.dedup_bytes_unique" in
  ignore (Storage.put storage "e0.pod2" b);
  let unique_ab = Metrics.counter metrics "storage.dedup_bytes_unique" in
  (* the sibling's modelled memory dedupes; only its (tiny) distinct
     encoded bytes are new *)
  check tbool "sibling's memory fully dedupes" true
    (unique_ab - unique_a < a.Image.logical_size / 4);
  check tbool "dedup factor reflects the sharing" true
    (Metrics.gauge metrics "storage.dedup_factor" > 1.5);
  let freed_before = Metrics.counter metrics "storage.dedup_chunks_freed" in
  Storage.remove storage "e0.pod1";
  (* pod1's own encoded chunks may go, the shared region chunks must not *)
  (match Storage.get storage "e0.pod2" with
   | None -> Alcotest.fail "sibling read broken by the other's GC"
   | Some got -> check tstr "sibling bytes intact" b.Image.encoded got.Image.encoded);
  Storage.remove storage "e0.pod2";
  check tbool "last reference frees the shared chunks" true
    (Metrics.counter metrics "storage.dedup_chunks_freed" > freed_before);
  check tbool "store empty" true (Storage.keys storage = [])

(* Restart byte-identity across every backend x compression combination:
   the same full+delta chain, stored and materialized, must come back
   checksum-equal everywhere (the deterministic seed makes the captured
   images identical across environments). *)
let test_backend_restart_byte_identity () =
  let run backend compress =
    let _, pod, storage, _metrics, snap = delta_env_m ~backend ~compress () in
    let r1 = snap (Simtime.ms 5) in
    (match Storage.put storage "base" (Image.of_pod_image r1.Pod_ckpt.image) with
     | Ok () -> ()
     | Error e -> Alcotest.failf "put base: %s" e);
    Pod_ckpt.clear_memory_dirty pod;
    let r2 = snap (Simtime.ms 10) in
    let d =
      Delta.make ~base_key:"base" ~base:r1.Pod_ckpt.image ~full:r2.Pod_ckpt.image
        ~dirty_bytes:(Pod_ckpt.dirty_memory_bytes pod)
    in
    (match Storage.put storage "d1" (Image.of_pod_image d) with
     | Ok () -> ()
     | Error e -> Alcotest.failf "put d1: %s" e);
    match Storage.get storage "d1" with
    | None -> Alcotest.fail "chain must materialize"
    | Some img -> (img.Image.encoded, Image.checksum img)
  in
  let ref_bytes, ref_sum = run ZParams.Sb_plain false in
  List.iter
    (fun (b, c, label) ->
      let bytes, sum = run b c in
      check tstr (label ^ ": bytes identical") ref_bytes bytes;
      check tbool (label ^ ": checksum identical") true (sum = ref_sum))
    [ (ZParams.Sb_plain, true, "plain+compress");
      (ZParams.Sb_dedup, false, "dedup");
      (ZParams.Sb_dedup, true, "dedup+compress");
      (ZParams.Sb_buddy, false, "buddy");
      (ZParams.Sb_buddy, true, "buddy+compress") ]

(* Buddy backend: copies live in two nodes' RAM; a node death re-buddies
   the surviving copy and the data stays readable. *)
let test_buddy_reassign_on_death () =
  let engine = Engine.create ~seed:11 () in
  let metrics = Metrics.create () in
  let storage =
    Storage.create ~metrics ~backend:ZParams.Sb_buddy ~nodes:4 engine
  in
  let img = mk_img ~pod_id:3 ~name:"svc" ~mem:65536 () in
  (match Storage.put ~node:1 storage "b.pod3" img with
   | Ok () -> ()
   | Error e -> Alcotest.failf "buddy put: %s" e);
  check tbool "owner holds a copy" true (Storage.replica_has storage ~replica:0 "b.pod3");
  check tbool "partner holds a copy" true (Storage.replica_has storage ~replica:1 "b.pod3");
  (* the owner dies: the partner's copy survives and is re-buddied *)
  Storage.node_died storage 1;
  check tbool "reassignment counted" true
    (Metrics.counter metrics "storage.buddy_reassigned" = 1);
  (match Storage.get storage "b.pod3" with
   | None -> Alcotest.fail "buddy data must survive the owner's death"
   | Some got -> check tstr "bytes intact after re-buddy" img.Image.encoded got.Image.encoded);
  check tbool "still two live copies" true
    (Storage.replica_has storage ~replica:0 "b.pod3"
     && Storage.replica_has storage ~replica:1 "b.pod3");
  (* both remaining holders die: the entry is lost (the peer-memory
     trade-off) *)
  Storage.node_died storage 2;
  Storage.node_died storage 3;
  Storage.node_died storage 0;
  check tbool "data lost with its last holder" true
    (Storage.get storage "b.pod3" = None);
  check tbool "loss counted" true (Metrics.counter metrics "storage.buddy_lost" >= 1)

(* --- qcheck: chunking and compression ----------------------------------- *)

let prop_chunk_roundtrip =
  QCheck.Test.make ~name:"chunk split/reassemble is byte-identical" ~count:200
    (QCheck.string_of_size QCheck.Gen.(int_range 0 20_000))
    (fun s ->
      let chunks = Chunk.split s in
      String.equal (Chunk.reassemble chunks) s
      && List.for_all
           (fun (h, b) ->
             h = Chunk.hash b
             && String.length b <= Chunk.chunk_bytes
             && String.length b > 0)
           chunks
      && List.length chunks
         = (String.length s + Chunk.chunk_bytes - 1) / Chunk.chunk_bytes)

let prop_compress_roundtrip =
  QCheck.Test.make
    ~name:"compression model is deterministic, bounded and roundtrip-safe"
    ~count:60
    QCheck.(pair (string_of_size Gen.(int_range 1 5_000)) (int_range 0 1_000_000))
    (fun (blob, mem) ->
      let ratio = Compress.encoded_ratio blob in
      let v =
        Value.assoc
          [ ("pod_id", Value.int 1); ("name", Value.str "p");
            ("memory_bytes", Value.int mem); ("blob", Value.str blob) ]
      in
      let img = Image.of_pod_image v in
      let engine = Engine.create ~seed:1 () in
      let st = Storage.create ~compress:true engine in
      ignore (Storage.put st "k" img);
      ratio >= 0.12 && ratio <= 0.98
      && Float.equal (Compress.encoded_ratio blob) ratio
      && img.Image.comp_size >= 1
      && img.Image.comp_size <= img.Image.logical_size
      && (match Storage.get st "k" with
          | Some got ->
            String.equal got.Image.encoded img.Image.encoded
            && Image.checksum got = Image.checksum img
          | None -> false))

let () =
  Alcotest.run "ckpt"
    [ ( "sock_state",
        [ Alcotest.test_case "overlap trim" `Quick test_trim_overlap;
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "read-inject" `Quick test_read_inject_preserves_data;
          Alcotest.test_case "peek misses oob" `Quick test_peek_mode_misses_oob;
          Alcotest.test_case "send queue" `Quick test_send_queue_capture;
          Alcotest.test_case "image roundtrip" `Quick test_socket_image_roundtrip;
          Alcotest.test_case "restore connection" `Quick test_restore_connection_applies_state ]
      );
      ( "meta",
        [ Alcotest.test_case "pairing" `Quick test_schedule_pairing;
          Alcotest.test_case "orphan + connecting" `Quick test_schedule_orphan_and_connecting;
          Alcotest.test_case "shared source port" `Quick test_schedule_shared_source_port;
          Alcotest.test_case "value roundtrip" `Quick test_meta_value_roundtrip ] );
      ( "pod image",
        [ Alcotest.test_case "checkpoint/restore" `Quick test_pod_checkpoint_image;
          Alcotest.test_case "relative deadlines" `Quick test_block_deadline_relative;
          Alcotest.test_case "zombie survives restart" `Quick test_zombie_survives_restart;
          Alcotest.test_case "restored pipe ids unique" `Quick
            test_restored_pipe_ids_unique ] );
      ( "delta",
        [ Alcotest.test_case "dirty tracking" `Quick test_memory_dirty_tracking;
          Alcotest.test_case "chain byte-identity" `Quick test_delta_chain_byte_identity;
          Alcotest.test_case "corruption + gc" `Quick
            test_delta_chain_corruption_and_gc ] );
      ( "storage backends",
        [ Alcotest.test_case "COW shadow on pinned overwrite" `Quick
            test_overwrite_pinned_base_cow;
          Alcotest.test_case "heal re-replicates" `Quick test_heal_rereplicates;
          Alcotest.test_case "dedup sibling GC" `Quick test_dedup_sibling_gc;
          Alcotest.test_case "restart byte-identity across backends" `Quick
            test_backend_restart_byte_identity;
          Alcotest.test_case "buddy reassignment on node death" `Quick
            test_buddy_reassign_on_death ] );
      ( "migration properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_precopy_composition_identity; prop_precopy_residue_monotone;
            prop_chunk_roundtrip; prop_compress_roundtrip ] ) ]
