(* Tests for the discrete-event engine, heap, RNG and time arithmetic. *)

module Simtime = Zapc_sim.Simtime
module Pheap = Zapc_sim.Pheap
module Engine = Zapc_sim.Engine
module Rng = Zapc_sim.Rng
module Stats = Zapc_sim.Stats

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool

(* --- heap --- *)

let test_heap_order () =
  let h = Pheap.create () in
  List.iter (fun k -> Pheap.push h ~key:k k) [ 5; 3; 8; 1; 9; 2; 7 ];
  let out = ref [] in
  let rec drain () =
    match Pheap.pop h with
    | Some (_, v) ->
      out := v :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ] (List.rev !out)

let test_heap_fifo_ties () =
  let h = Pheap.create () in
  List.iteri (fun i name -> Pheap.push h ~key:(i mod 2) name) [ "a"; "b"; "c"; "d"; "e" ];
  (* keys: a=0 b=1 c=0 d=1 e=0; expect a,c,e (fifo at key 0) then b,d *)
  let out = ref [] in
  let rec drain () =
    match Pheap.pop h with
    | Some (_, v) ->
      out := v :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "fifo ties" [ "a"; "c"; "e"; "b"; "d" ] (List.rev !out)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops in key order" ~count:200
    QCheck.(list small_int)
    (fun keys ->
      let h = Pheap.create () in
      List.iter (fun k -> Pheap.push h ~key:k k) keys;
      let rec drain acc =
        match Pheap.pop h with Some (k, _) -> drain (k :: acc) | None -> List.rev acc
      in
      let out = drain [] in
      out = List.sort Int.compare keys)

(* --- calendar queue vs the sorted-list model --- *)

module Calq = Zapc_sim.Calq

(* Reference: a plain insertion-ordered list.  The expected pop is the
   earliest-inserted entry among those with the minimal key — exactly the
   [(key, seq)] total order both real queues implement. *)
let model_take_min model =
  match model with
  | [] -> None
  | _ ->
    let k = List.fold_left (fun acc (key, _) -> min acc key) max_int model in
    let rec go acc = function
      | (key, v) :: rest when key = k -> Some ((key, v), List.rev_append acc rest)
      | x :: rest -> go (x :: acc) rest
      | [] -> None
    in
    go [] model

(* Tiny geometry (fine width 16, fine horizon 256, coarse horizon 2048) so
   a short random op sequence crosses every layer: fine ring, coarse ring,
   the latecomer heap, and the overflow pheap. *)
let prop_calq_vs_model =
  QCheck.Test.make ~name:"calendar queue matches sorted-list model" ~count:300
    QCheck.(list (pair (int_bound 3) (int_bound 5_000)))
    (fun ops ->
      let q = Calq.create ~shift:4 ~b1:4 ~buckets2:8 ~dummy:(-1) () in
      let model = ref [] in
      let seq = ref 0 in
      let clock = ref 0 in  (* pushes never land before the last pop *)
      let ok = ref true in
      let push k =
        let v = !seq in
        incr seq;
        Calq.push q ~key:k v;
        model := !model @ [ (k, v) ]
      in
      List.iter
        (fun (kind, n) ->
          match kind with
          | 0 -> push (!clock + (n mod 300))  (* fine/coarse horizons *)
          | 1 -> push (!clock + n)  (* up to overflow *)
          | 2 ->
            (match (Calq.pop q, model_take_min !model) with
             | Some (k, v), Some ((k', v'), rest) ->
               if k <> k' || v <> v' then ok := false;
               model := rest;
               clock := max !clock k
             | None, None -> ()
             | _ -> ok := false)
          | _ ->
            let limit = !clock + (n mod 500) in
            (match (Calq.pop_if_le q ~limit, model_take_min !model) with
             | Some (k, v), Some ((k', v'), rest) when k' <= limit ->
               if k <> k' || v <> v' then ok := false;
               model := rest;
               clock := max !clock k
             | None, Some ((k', _), _) when k' > limit -> ()
             | None, None -> ()
             | _ -> ok := false))
        ops;
      (* drain: the remainder must come out in model order too *)
      let rec drain () =
        match (Calq.pop q, model_take_min !model) with
        | Some (k, v), Some ((k', v'), rest) ->
          if k <> k' || v <> v' then ok := false;
          model := rest;
          drain ()
        | None, None -> ()
        | _ -> ok := false
      in
      drain ();
      !ok && Calq.is_empty q)

(* Keys sitting exactly on fine-bucket, fine-horizon and coarse-horizon
   boundaries, with FIFO ties straddling the layers. *)
let test_calq_bucket_boundaries () =
  let q = Calq.create ~shift:2 ~b1:2 ~buckets2:4 ~dummy:(-1) () in
  (* fine width 4, fine horizon 16, coarse horizon 64 *)
  let keys = [ 0; 3; 4; 15; 16; 17; 63; 64; 64; 65; 200; 1_000_000; 0 ] in
  List.iteri (fun i k -> Calq.push q ~key:k i) keys;
  check tint "length" (List.length keys) (Calq.length q);
  let rec drain acc =
    match Calq.pop q with Some (k, v) -> drain ((k, v) :: acc) | None -> List.rev acc
  in
  let out = drain [] in
  let expected =
    (* sort by key, stable in insertion order (= value order here) *)
    List.stable_sort
      (fun (a, _) (b, _) -> Int.compare a b)
      (List.mapi (fun i k -> (k, i)) keys)
  in
  Alcotest.(check (list (pair int int))) "boundary order + fifo ties" expected out;
  check tbool "empty" true (Calq.is_empty q)

let test_calq_clear_iter () =
  let q = Calq.create ~shift:2 ~b1:2 ~buckets2:4 ~dummy:(-1) () in
  List.iteri (fun i k -> Calq.push q ~key:k i) [ 1; 40; 9_999 ];
  let seen = ref [] in
  Calq.iter q (fun k v -> seen := (k, v) :: !seen);
  check tint "iter visits all" 3 (List.length !seen);
  Calq.clear q;
  check tbool "cleared" true (Calq.is_empty q);
  check tint "cleared length" 0 (Calq.length q);
  Calq.push q ~key:5 7;
  check tint "usable after clear" 1 (Calq.length q)

(* --- engine --- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:(Simtime.ms 5) (fun () -> log := 5 :: !log);
  Engine.schedule e ~delay:(Simtime.ms 1) (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:(Simtime.ms 3) (fun () -> log := 3 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "order" [ 1; 3; 5 ] (List.rev !log);
  check tint "clock" (Simtime.ms 5) (Engine.now e)

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  for i = 1 to 10 do
    Engine.schedule e ~delay:(Simtime.ms i) (fun () -> incr fired)
  done;
  Engine.run ~until:(Simtime.ms 5) e;
  check tint "fired by 5ms" 5 !fired;
  check tint "clock stopped" (Simtime.ms 5) (Engine.now e);
  Engine.run e;
  check tint "all fired" 10 !fired

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick n =
    if n > 0 then begin
      incr count;
      Engine.schedule e ~delay:(Simtime.us 10) (fun () -> tick (n - 1))
    end
  in
  Engine.schedule e ~delay:Simtime.zero (fun () -> tick 100);
  Engine.run e;
  check tint "nested" 100 !count

let test_engine_past_schedule_clamped () =
  let e = Engine.create () in
  let at = ref (-1) in
  Engine.schedule e ~delay:(Simtime.ms 2) (fun () ->
      (* scheduling "in the past" clamps to now *)
      Engine.schedule_at e ~at:Simtime.zero (fun () -> at := Engine.now e));
  Engine.run e;
  check tint "clamped" (Simtime.ms 2) !at

let test_max_events () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec forever () =
    incr count;
    Engine.schedule e ~delay:(Simtime.us 1) forever
  in
  Engine.schedule e ~delay:Simtime.zero (fun () -> forever ());
  Engine.run ~max_events:50 e;
  check tint "bounded" 50 !count

(* Both queue backends implement the same (time, sequence) total order, so
   a seeded schedule fires identically under either. *)
let prop_engine_queue_equivalence =
  QCheck.Test.make ~name:"heap and calendar engines fire identically" ~count:100
    QCheck.(list (int_bound 10_000))
    (fun delays ->
      let run kind =
        let e = Engine.create ~queue:kind () in
        let log = ref [] in
        List.iteri
          (fun i d ->
            Engine.schedule e ~delay:(Simtime.us d) (fun () ->
                log := (i, Engine.now e) :: !log))
          delays;
        Engine.run e;
        List.rev !log
      in
      run Engine.Heap = run Engine.Calendar)

(* Cancellable timer handles: re-arming moves the deadline (one fire per
   arm..fire cycle), cancelling turns the queued trampoline into a no-op,
   and a cancelled timer re-arms cleanly. *)
let test_timer_cancel_rearm () =
  let e = Engine.create () in
  let fired = ref [] in
  let tm = Engine.timer (fun () -> fired := Engine.now e :: !fired) in
  Engine.timer_arm_in e tm ~delay:(Simtime.ms 1);
  Engine.timer_arm_in e tm ~delay:(Simtime.ms 3);
  check tbool "active while armed" true (Engine.timer_active tm);
  Engine.run e;
  Alcotest.(check (list int)) "one fire, at the moved deadline"
    [ Simtime.ms 3 ] (List.rev !fired);
  check tbool "inactive after fire" false (Engine.timer_active tm);
  Engine.timer_arm_in e tm ~delay:(Simtime.ms 1);
  Engine.timer_cancel tm;
  check tbool "inactive after cancel" false (Engine.timer_active tm);
  Engine.run e;
  check tint "cancelled arm never fires" 1 (List.length !fired);
  Engine.timer_arm_in e tm ~delay:(Simtime.ms 2);
  Engine.run e;
  check tint "re-arms after cancel" 2 (List.length !fired)

(* --- rng determinism --- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    check tint "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let c = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Rng.int c 1000) in
  check tbool "streams differ" true (xs <> ys)

let prop_rng_bounds =
  QCheck.Test.make ~name:"rng int in bounds" ~count:200
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let r = Rng.create ~seed in
      let x = Rng.int r n in
      x >= 0 && x < n)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"rng float in bounds" ~count:200 QCheck.small_int (fun seed ->
      let r = Rng.create ~seed in
      let x = Rng.float r 2.5 in
      x >= 0.0 && x < 2.5)

(* --- stats --- *)

let test_stats () =
  let s = Stats.of_list [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 1.25) (Stats.stddev s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max s);
  check tint "count" 4 (Stats.count s)

let test_time_units () =
  check tint "us" 1_000 (Simtime.us 1);
  check tint "ms" 1_000_000 (Simtime.ms 1);
  check tint "sec" 1_000_000_000 (Simtime.sec 1.0);
  Alcotest.(check (float 1e-9)) "to_ms" 1.5 (Simtime.to_ms (Simtime.us 1500))

let () =
  Alcotest.run "sim"
    [ ( "heap",
        [ Alcotest.test_case "order" `Quick test_heap_order;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          QCheck_alcotest.to_alcotest prop_heap_sorted ] );
      ( "calq",
        [ QCheck_alcotest.to_alcotest prop_calq_vs_model;
          Alcotest.test_case "bucket boundaries + fifo ties" `Quick
            test_calq_bucket_boundaries;
          Alcotest.test_case "clear + iter" `Quick test_calq_clear_iter ] );
      ( "engine",
        [ Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "until" `Quick test_engine_until;
          Alcotest.test_case "nested" `Quick test_engine_nested_schedule;
          Alcotest.test_case "past clamped" `Quick test_engine_past_schedule_clamped;
          Alcotest.test_case "max events" `Quick test_max_events;
          QCheck_alcotest.to_alcotest prop_engine_queue_equivalence;
          Alcotest.test_case "timer cancel + re-arm" `Quick test_timer_cancel_rearm ] );
      ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          QCheck_alcotest.to_alcotest prop_rng_bounds;
          QCheck_alcotest.to_alcotest prop_rng_float_bounds ] );
      ( "stats",
        [ Alcotest.test_case "moments" `Quick test_stats;
          Alcotest.test_case "time units" `Quick test_time_units ] ) ]
