(* Chaos harness: seeded fault-injection scenarios against the coordinated
   checkpoint-restart protocol.

   Two layers:

   - Directed cases pin down the failure semantics one fault at a time: a
     control-channel break landing between the meta report and 'continue', a
     hung (stalled but connected) Agent that only the per-phase timeouts can
     unstick, a shared-storage outage, a whole-node crash mid-checkpoint,
     and a packet-loss burst the protocol must simply ride out.

   - A property-style sweep runs N random scenarios (topology x workload x
     fault schedule, all derived from the scenario seed), asserting after
     every one that the operation either completed fully or aborted cleanly:
     a structured failure reason is present on failure, the Manager is idle
     again, no netfilter rule or in-flight Agent operation leaks, every
     surviving pod is running (not frozen), and — when no application node
     crashed — the application still finishes and logs its result, which
     also proves the surviving TCP connections carry data.

   N comes from CHAOS_SEEDS (default 25): CHAOS_SEEDS=200 dune build @chaos. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Rng = Zapc_sim.Rng
module Fabric = Zapc_simnet.Fabric
module Netfilter = Zapc_simnet.Netfilter
module Kernel = Zapc_simos.Kernel
module Pod = Zapc_pod.Pod
module Cluster = Zapc.Cluster
module Manager = Zapc.Manager
module Agent = Zapc.Agent
module Protocol = Zapc.Protocol
module Params = Zapc.Params
module Storage = Zapc.Storage
module Periodic = Zapc.Periodic
module Supervisor = Zapc.Supervisor
module Launch = Zapc_msg.Launch
module Faultsim = Zapc_faultsim.Faultsim
module Flight = Zapc_obs.Flight
module Json = Zapc_obs.Json

let check = Alcotest.check
let tbool = Alcotest.bool

let logged : string list ref = ref []

let chaos_params = { Params.default with phase_timeout = Simtime.ms 200 }

let make_cluster ?(params = chaos_params) ?(nodes = 4) ?(seed = 42) () =
  Zapc_apps.Registry.register_all ();
  let cluster = Cluster.make ~seed ~params ~node_count:nodes () in
  logged := [];
  for i = 0 to nodes - 1 do
    Kernel.set_logger (Cluster.node cluster i).Cluster.n_kernel (fun _ _ m ->
        logged := m :: !logged)
  done;
  cluster

let has_log prefix =
  List.exists
    (fun s ->
      String.length s >= String.length prefix
      && String.equal (String.sub s 0 (String.length prefix)) prefix)
    !logged

let bt_args g iters =
  Zapc_apps.Bt_nas.params_to_value { Zapc_apps.Bt_nas.default_params with g; iters }

let cpi_args chunks =
  Zapc_apps.Cpi.params_to_value
    { Zapc_apps.Cpi.default_params with intervals = 200_000; chunks }

let node_of_pod cluster (p : Pod.t) =
  match Fabric.node_of_ip (Cluster.fabric cluster) p.rip with Some n -> n | None -> -1

let ckpt_items cluster (app : Launch.app) ~prefix =
  Launch.checkpoint_items app ~key_prefix:prefix ~node_of_pod:(node_of_pod cluster)

(* Kick off a checkpoint and hand back a cell the engine loop can poll. *)
let start_checkpoint cluster items =
  let result = ref None in
  Manager.checkpoint (Cluster.manager cluster) ~items ~resume:true ~on_done:(fun r ->
      result := Some r);
  result

let wait_result ?(timeout = Simtime.sec 10.0) cluster result =
  Cluster.run_until cluster ~timeout (fun () -> !result <> None);
  Option.get !result

(* --- the complete-or-clean-abort invariant ----------------------------- *)

let assert_clean ctx cluster fs =
  let fail fmt = Printf.ksprintf (fun m -> Alcotest.fail (ctx ^ ": " ^ m)) fmt in
  if Manager.busy (Cluster.manager cluster) then fail "manager still busy";
  let nf = Fabric.netfilter (Cluster.fabric cluster) in
  if Netfilter.blocked_count nf <> 0 then
    fail "%d leaked netfilter rule(s)" (Netfilter.blocked_count nf);
  let crashed = Faultsim.crashed_nodes fs in
  for i = 0 to Cluster.node_count cluster - 1 do
    let node = Cluster.node cluster i in
    if not (List.mem i crashed) then begin
      if Agent.busy node.Cluster.n_agent then
        fail "agent on node %d leaked an in-flight operation" i;
      List.iter
        (fun (p : Pod.t) ->
          if p.frozen then fail "pod %d left suspended on node %d" p.pod_id i;
          match Pod.find p.pod_id with
          | Some q when q == p -> ()
          | Some _ | None -> fail "pod %d leaked from the registry on node %d" p.pod_id i)
        (Agent.live_pods node.Cluster.n_agent)
    end
  done

let assert_result_shape ctx (r : Manager.op_result) =
  match (r.r_ok, r.r_failure) with
  | true, None | false, Some _ -> ()
  | true, Some _ -> Alcotest.fail (ctx ^ ": ok result carries a failure reason")
  | false, None -> Alcotest.fail (ctx ^ ": failed result lacks a failure reason")

(* --- directed cases ---------------------------------------------------- *)

(* Satellite: a channel break after the meta report but before 'continue'
   aborts on both sides, and the pod processes resume and keep making
   progress. *)
let test_midckpt_channel_break () =
  let cluster = make_cluster () in
  (* flight recorder armed before the fault harness: the seeded abort below
     must trip a dump both in memory and on disk *)
  let dump_dir =
    let f = Filename.temp_file "zapc_flight" ".d" in
    Sys.remove f;
    Sys.mkdir f 0o755;
    f
  in
  let fl = Cluster.enable_flight ~dump_dir cluster in
  let fs = Faultsim.create cluster in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 96 25) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  (* the first meta_sent fires while the Manager still waits for the other
     pod's meta: exactly the window between report and 'continue' *)
  Faultsim.install fs
    { fault = Break_channel { node = 1 };
      trigger = On_phase { phase = "meta_sent"; pod = None; skip = 0 } };
  let result = start_checkpoint cluster (ckpt_items cluster app ~prefix:"doomed") in
  let r = wait_result cluster result in
  check tbool "operation aborted" false r.Manager.r_ok;
  assert_result_shape "midckpt-break" r;
  (match r.Manager.r_failure with
   | Some (Protocol.F_channel { node }) ->
     check tbool "failure names the broken node" true (node = 1)
   | _ -> Alcotest.fail "expected F_channel");
  check tbool "fault fired" true (List.length (Faultsim.fired fs) = 1);
  (* the abort tripped the flight recorder: an in-memory dump that parses
     and decodes back into entries, plus a FLIGHT_*.json file on disk *)
  check tbool "flight recorder tripped" true (Flight.trips fl >= 1);
  (match Flight.last_dump fl with
   | None -> Alcotest.fail "no flight dump after seeded abort"
   | Some dump ->
     (match Json.parse dump with
      | Error e -> Alcotest.fail ("flight dump is not valid JSON: " ^ e)
      | Ok j ->
        (match Flight.entries_of_json j with
         | None -> Alcotest.fail "flight dump does not decode into entries"
         | Some entries ->
           check tbool "flight dump is non-empty" true (entries <> []);
           check tbool "flight dump captured open spans" true
             (List.exists
                (fun (_, e) ->
                  match e with Flight.Span_open _ -> true | _ -> false)
                entries))));
  let dumped =
    Sys.readdir dump_dir |> Array.to_list
    |> List.filter (fun f -> String.length f > 7 && String.sub f 0 7 = "FLIGHT_")
  in
  check tbool "flight dump written to disk" true (dumped <> []);
  List.iter (fun f -> Sys.remove (Filename.concat dump_dir f))
    (Array.to_list (Sys.readdir dump_dir));
  Sys.rmdir dump_dir;
  (* both sides resumed; the application still completes correctly *)
  assert_clean "midckpt-break" cluster fs;
  ignore (Launch.wait_done cluster app);
  check tbool "app made progress after abort" true (has_log "bt_nas: checksum")

(* Acceptance: a hung (stalled but not disconnected) Agent no longer stalls
   the Manager indefinitely — the meta-phase timeout aborts the operation,
   and the Agent's own continue-wait timeout resumes its suspended pod. *)
let test_hung_agent_times_out () =
  let cluster = make_cluster () in
  let fs = Faultsim.create cluster in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 96 25) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  (* stall node 1's control endpoint the instant its own pod suspends: its
     meta report is buffered, never lost, and the connection never breaks —
     so only the timeouts can save the protocol *)
  let pod1 = (List.nth app.Launch.pods 1).Pod.pod_id in
  Faultsim.install fs
    { fault = Hang_agent { node = 1; duration = None };
      trigger = On_phase { phase = "suspended"; pod = Some pod1; skip = 0 } };
  let result = start_checkpoint cluster (ckpt_items cluster app ~prefix:"hung") in
  let r = wait_result cluster result in
  check tbool "operation aborted by timeout" false r.Manager.r_ok;
  (match r.Manager.r_failure with
   | Some (Protocol.F_timeout { phase = Protocol.Ph_meta; waiting }) ->
     check tbool "timeout names a waiting pod" true (waiting <> [])
   | _ -> Alcotest.fail "expected F_timeout in the meta-gather phase");
  (* without healing the hang, the Agent-side continue-wait timeout must
     resume the suspended pod on its own *)
  Cluster.run cluster ~until:(Simtime.add (Cluster.now cluster) (Simtime.ms 500)) ();
  Faultsim.heal_all fs;
  Cluster.run cluster ~until:(Simtime.add (Cluster.now cluster) (Simtime.ms 500)) ();
  assert_clean "hung-agent" cluster fs;
  ignore (Launch.wait_done cluster app);
  check tbool "app completed after hang" true (has_log "bt_nas: checksum")

(* A storage write outage turns into a clean Agent-side abort (the pod
   resumes even though its image went nowhere), and the same checkpoint
   succeeds once the outage heals. *)
let test_storage_outage_aborts_cleanly () =
  let cluster = make_cluster () in
  let fs = Faultsim.create cluster in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 96 25) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  Faultsim.install fs { fault = Storage_outage { duration = None }; trigger = Now };
  let r = wait_result cluster (start_checkpoint cluster (ckpt_items cluster app ~prefix:"san")) in
  check tbool "outage fails the checkpoint" false r.Manager.r_ok;
  assert_result_shape "storage-outage" r;
  (match r.Manager.r_failure with
   | Some (Protocol.F_agent { detail; _ }) ->
     check tbool "failure mentions storage" true
       (String.length detail >= 7 && String.sub detail 0 7 = "storage")
   | _ -> Alcotest.fail "expected F_agent from the storage write");
  check tbool "a write was rejected" true (Storage.write_failures (Cluster.storage cluster) > 0);
  Cluster.run cluster ~until:(Simtime.add (Cluster.now cluster) (Simtime.ms 300)) ();
  assert_clean "storage-outage" cluster fs;
  (* heal and retry: full recovery *)
  Faultsim.heal_all fs;
  let r2 = wait_result cluster (start_checkpoint cluster (ckpt_items cluster app ~prefix:"san")) in
  check tbool "retry succeeds after heal" true r2.Manager.r_ok;
  ignore (Launch.wait_done cluster app);
  check tbool "app completed" true (has_log "bt_nas: checksum")

(* A node crash mid-checkpoint: the Manager aborts via the broken channel,
   the dead node's pods are gone, and the survivor resumes cleanly. *)
let test_node_crash_mid_checkpoint () =
  let cluster = make_cluster () in
  let fs = Faultsim.create cluster in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 96 25) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  Faultsim.install fs
    { fault = Crash_node { node = 1 };
      trigger = On_phase { phase = "suspended"; pod = None; skip = 0 } };
  let r = wait_result cluster (start_checkpoint cluster (ckpt_items cluster app ~prefix:"crash")) in
  check tbool "operation aborted" false r.Manager.r_ok;
  assert_result_shape "node-crash" r;
  Cluster.run cluster ~until:(Simtime.add (Cluster.now cluster) (Simtime.ms 300)) ();
  assert_clean "node-crash" cluster fs;
  (* the crashed node's pod is gone from the registry; the survivor lives *)
  let gone, alive =
    List.partition (fun (p : Pod.t) -> node_of_pod cluster p = -1) app.Launch.pods
  in
  check tbool "crashed node lost its pod" true (List.length gone >= 1);
  List.iter
    (fun (p : Pod.t) -> check tbool "survivor registered" true (Pod.find p.pod_id <> None))
    alive

(* A packet-loss burst on the fabric is the protocol's bread and butter:
   the checkpoint still completes (control channels are reliable; app TCP
   retransmits) and the application finishes. *)
let test_loss_burst_rides_out () =
  let cluster = make_cluster () in
  let fs = Faultsim.create cluster in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 96 25) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  Faultsim.install fs
    { fault = Loss_burst { prob = 0.2; duration = Simtime.ms 40 }; trigger = Now };
  let r = wait_result cluster (start_checkpoint cluster (ckpt_items cluster app ~prefix:"lossy")) in
  check tbool "checkpoint survives the burst" true r.Manager.r_ok;
  assert_clean "loss-burst" cluster fs;
  ignore (Launch.wait_done cluster app);
  check tbool "app completed under loss" true (has_log "bt_nas: checksum")

(* --- live migration under faults --------------------------------------- *)

let n_seeds () =
  match Sys.getenv_opt "CHAOS_SEEDS" with
  | Some s -> (try Stdlib.max 1 (int_of_string (String.trim s)) with _ -> 25)
  | None -> 25

(* Fixed costs sized so a whole pre-copy migration (announce, rounds,
   stop-and-copy, destination activation) fits comfortably inside the
   chaos phase timeout, while the faults still land mid-flight. *)
let mig_params =
  { chaos_params with
    phase_timeout = Simtime.ms 400;
    ckpt_fixed = Simtime.ms 20;
    restore_fixed = Simtime.ms 60;
    mig_stop_fixed = Simtime.ms 4;
    mig_resume_fixed = Simtime.ms 6;
    cost_jitter = 0.2 }

let find_log prefix =
  List.find_opt
    (fun s ->
      String.length s >= String.length prefix
      && String.equal (String.sub s 0 (String.length prefix)) prefix)
    !logged

(* Where the pod with this id lives RIGHT NOW: migration re-creates the
   Pod.t on the destination, so stale launch-time references go dark. *)
let pod_node cluster pod_id =
  match Pod.find pod_id with Some p -> node_of_pod cluster p | None -> -1

let mig_pod cluster (app : Launch.app) ~on_node =
  match
    List.find_opt (fun (p : Pod.t) -> node_of_pod cluster p = on_node) app.Launch.pods
  with
  | Some p -> p
  | None -> Alcotest.fail "no app pod on the expected node"

let start_migrate ?max_rounds cluster ~pod_id ~dest =
  let result = ref None in
  Manager.migrate ?max_rounds (Cluster.manager cluster) ~pod:pod_id
    ~src_node:(pod_node cluster pod_id) ~dest_node:dest ~on_done:(fun r ->
      result := Some r);
  result

(* The checksum a clean, unmigrated run of the scenario workload logs —
   every migration scenario must end on the byte-identical line, which
   rules out data loss or duplication across the move. *)
let mig_reference =
  lazy
    (let cluster = make_cluster ~params:mig_params () in
     let app =
       Launch.launch cluster ~name:"ref" ~program:"bt_nas" ~placement:[ 0; 1 ]
         ~app_args:(bt_args 64 15) ()
     in
     ignore (Launch.wait_done cluster app);
     match find_log "bt_nas: checksum" with
     | Some l -> l
     | None -> Alcotest.fail "reference run produced no checksum")

(* Launch the standard 2-rank workload and return the rank-1 pod (the one
   every migration scenario moves). *)
let mig_setup seed =
  let reference = Lazy.force mig_reference in
  let cluster = make_cluster ~params:mig_params ~seed () in
  let fs = Faultsim.create cluster in
  let app =
    Launch.launch cluster ~name:"mig" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 64 15) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  (cluster, fs, app, mig_pod cluster app ~on_node:1, reference)

let mig_app_intact ctx cluster reference =
  Cluster.run_until cluster ~timeout:(Simtime.sec 1200.0) (fun () ->
      has_log "bt_nas: checksum");
  if not (List.mem reference !logged) then
    Alcotest.fail (ctx ^ ": checksum differs from the unmigrated run")

let mig_digest fs r pod_id cluster =
  let fired =
    List.map (fun (t, w) -> Printf.sprintf "%d %s" t w) (Faultsim.fired fs)
  in
  Zapc.Trace.clear_observers (Faultsim.trace fs);
  fired
  @ [ Printf.sprintf "ok=%b pod@%d t=%.3fms" r.Manager.r_ok
        (pod_node cluster pod_id) (Simtime.to_ms (Cluster.now cluster)) ]

(* Smoke: live-migrate one rank of a connected application while its peer
   keeps sending, no faults.  The pre-copy rounds, the netfilter-gated
   blackout and the destination activation all run under real traffic, and
   the final checksum proves the TCP stream lost nothing in the move. *)
let run_mig_under_traffic seed =
  let cluster, fs, _app, p, reference = mig_setup (3000 + seed) in
  let r = wait_result cluster (start_migrate cluster ~pod_id:p.Pod.pod_id ~dest:2) in
  check tbool "live migrate ok" true r.Manager.r_ok;
  assert_result_shape "mig-smoke" r;
  check tbool "pod now on the destination" true (pod_node cluster p.Pod.pod_id = 2);
  assert_clean "mig-smoke" cluster fs;
  mig_app_intact "mig-smoke" cluster reference;
  mig_digest fs r p.Pod.pod_id cluster

(* Scenario 1: the DESTINATION node crashes mid-round, with the supervisor
   watching the app.  The operation must fail with a structured reason, the
   source copy keeps running untouched, and the supervisor must not
   double-recover (the pod never left its watched home). *)
let run_mig_dest_crash seed =
  let cluster, fs, app, p, reference = mig_setup (3100 + seed) in
  let svc =
    Periodic.start cluster ~pods:app.Launch.pods ~prefix:"migsup"
      ~period:(Simtime.ms 50) ~keep:2 ()
  in
  let sup = Supervisor.start ~trace:(Faultsim.trace fs) cluster svc in
  Cluster.run_until cluster ~timeout:(Simtime.sec 30.0) (fun () ->
      Periodic.last_good svc >= 1 && not (Manager.busy (Cluster.manager cluster)));
  Faultsim.install fs
    { fault = Crash_node { node = 2 };
      trigger = On_phase { phase = "mig_round"; pod = Some p.Pod.pod_id; skip = 0 } };
  let r = wait_result cluster (start_migrate cluster ~pod_id:p.Pod.pod_id ~dest:2) in
  check tbool "migration aborted" false r.Manager.r_ok;
  assert_result_shape "mig-dest-crash" r;
  (match r.Manager.r_failure with
   | Some (Protocol.F_channel { node }) ->
     check tbool "failure names the dead destination" true (node = 2)
   | _ -> Alcotest.fail "expected F_channel naming the destination");
  check tbool "fault fired" true (List.length (Faultsim.fired fs) = 1);
  check tbool "pod still on the source" true (pod_node cluster p.Pod.pod_id = 1);
  (* run on across another periodic epoch: plenty of time for a confused
     supervisor to act, and proof the epoch machinery still checkpoints the
     unmoved pod from its source node *)
  let good = Periodic.last_good svc in
  Cluster.run_until cluster ~timeout:(Simtime.sec 30.0) (fun () ->
      Periodic.last_good svc > good && not (Manager.busy (Cluster.manager cluster)));
  check tbool "supervisor did not double-recover" true (Supervisor.recoveries sup = 0);
  check tbool "watch set never moved to the dead destination" true
    (not (List.mem 2 (Supervisor.watched sup)));
  Supervisor.stop sup;
  Periodic.stop svc;
  Cluster.run cluster ~until:(Simtime.add (Cluster.now cluster) (Simtime.ms 200)) ();
  assert_clean "mig-dest-crash" cluster fs;
  mig_app_intact "mig-dest-crash" cluster reference;
  mig_digest fs r p.Pod.pod_id cluster

(* Scenario 2: the SOURCE node crashes the instant it hands the pod off —
   its own done-report never gets out, but the destination committed first.
   The Manager's grace window must let the in-flight commit win: exactly
   one live copy afterwards, on the destination, and no split brain. *)
let run_mig_src_crash seed =
  let cluster, fs, _app, p, reference = mig_setup (3200 + seed) in
  Faultsim.install fs
    { fault = Crash_node { node = 1 };
      trigger = On_phase { phase = "mig_handoff"; pod = Some p.Pod.pod_id; skip = 0 } };
  let r = wait_result cluster (start_migrate cluster ~pod_id:p.Pod.pod_id ~dest:2) in
  check tbool "destination copy wins" true r.Manager.r_ok;
  assert_result_shape "mig-src-crash" r;
  check tbool "fault fired" true (List.length (Faultsim.fired fs) = 1);
  check tbool "source loss after commit counted once" true
    (Zapc_obs.Metrics.counter (Cluster.metrics cluster) "mgr.mig.src_lost_after_commit"
     = 1);
  check tbool "exactly one live copy, on the destination" true
    (pod_node cluster p.Pod.pod_id = 2);
  Cluster.run cluster ~until:(Simtime.add (Cluster.now cluster) (Simtime.ms 300)) ();
  assert_clean "mig-src-crash" cluster fs;
  mig_app_intact "mig-src-crash" cluster reference;
  mig_digest fs r p.Pod.pod_id cluster

(* Scenario 3: the destination's channel breaks during the residue
   transfer — after the source suspended the pod, before the commit.  The
   operation aborts cleanly, the pod resumes on the source, the destination
   drops everything it staged, and the pod is immediately migratable again
   to a healthy node. *)
let run_mig_residue_break seed =
  let cluster, fs, _app, p, reference = mig_setup (3300 + seed) in
  let stage_drops = ref 0 in
  Zapc.Trace.on_record (Faultsim.trace fs) (fun (ev : Zapc.Trace.event) ->
      if String.equal ev.ev_what "mig_stage_dropped" && ev.ev_pod = p.Pod.pod_id
      then incr stage_drops);
  Faultsim.install fs
    { fault = Break_channel { node = 2 };
      trigger = On_phase { phase = "mig_residue"; pod = Some p.Pod.pod_id; skip = 0 } };
  let r = wait_result cluster (start_migrate cluster ~pod_id:p.Pod.pod_id ~dest:2) in
  check tbool "migration aborted" false r.Manager.r_ok;
  assert_result_shape "mig-residue-break" r;
  (match r.Manager.r_failure with
   | Some (Protocol.F_channel { node }) ->
     check tbool "break names the destination" true (node = 2)
   | _ -> Alcotest.fail "expected F_channel naming the destination");
  Cluster.run cluster ~until:(Simtime.add (Cluster.now cluster) (Simtime.ms 300)) ();
  check tbool "pod resumed on the source" true (pod_node cluster p.Pod.pod_id = 1);
  check tbool "destination dropped its staged rounds" true (!stage_drops >= 1);
  assert_clean "mig-residue-break" cluster fs;
  (* the abort left no residue in the way: a retry to a healthy node wins *)
  let r2 = wait_result cluster (start_migrate cluster ~pod_id:p.Pod.pod_id ~dest:3) in
  check tbool "retry to a healthy destination succeeds" true r2.Manager.r_ok;
  check tbool "pod now on the retry destination" true
    (pod_node cluster p.Pod.pod_id = 3);
  assert_clean "mig-residue-retry" cluster fs;
  mig_app_intact "mig-residue-break" cluster reference;
  mig_digest fs r p.Pod.pod_id cluster

let test_mig_under_traffic () = ignore (run_mig_under_traffic 42)
let test_mig_dest_crash () = ignore (run_mig_dest_crash 42)
let test_mig_src_crash () = ignore (run_mig_src_crash 42)
let test_mig_residue_break () = ignore (run_mig_residue_break 42)

(* Every scenario must hold across the seed sweep (jitter moves every cost,
   so the faults land at different instants each time). *)
let test_mig_seed_sweep () =
  let n = Stdlib.max 3 (n_seeds () / 3) in
  for seed = 1 to n do
    ignore (run_mig_dest_crash seed);
    ignore (run_mig_src_crash seed);
    ignore (run_mig_residue_break seed)
  done;
  Printf.printf "chaos: migration scenarios swept over %d seeds\n%!" n

(* ... and bit-identically: the same seed replays the same fault instants
   and the same outcome. *)
let test_mig_deterministic () =
  List.iter
    (fun (name, f) ->
      let a = f 11 and b = f 11 in
      check (Alcotest.list Alcotest.string) (name ^ ": same seed, same run") a b)
    [ ("under-traffic", run_mig_under_traffic);
      ("dest-crash", run_mig_dest_crash);
      ("src-crash", run_mig_src_crash);
      ("residue-break", run_mig_residue_break) ]

(* --- seeded random scenarios ------------------------------------------- *)

type scenario_outcome = { so_kinds : string list }

let kind_of = function
  | Faultsim.Break_channel _ -> "break"
  | Faultsim.Crash_node _ -> "crash"
  | Faultsim.Hang_agent _ -> "hang"
  | Faultsim.Loss_burst _ -> "loss"
  | Faultsim.Latency_spike _ -> "latency"
  | Faultsim.Storage_outage _ -> "storage"
  | Faultsim.Replica_outage _ -> "replica"
  | Faultsim.Corrupt_image _ -> "corrupt"

let run_scenario seed =
  let prng = Rng.create ~seed:(9000 + seed) in
  let nodes = 3 + Rng.int prng 2 in
  let cluster = make_cluster ~nodes ~seed:(1000 + seed) () in
  let fs = Faultsim.create cluster in
  (* workload: two ranks on a random pair of distinct nodes *)
  let n0 = Rng.int prng nodes in
  let n1 = (n0 + 1 + Rng.int prng (nodes - 1)) mod nodes in
  let program, args, done_log =
    if Rng.bool prng 0.5 then
      ("bt_nas", bt_args (64 + (32 * Rng.int prng 2)) (15 + Rng.int prng 15),
       "bt_nas: checksum")
    else ("cpi", cpi_args (3 + Rng.int prng 4), "cpi: pi")
  in
  let app =
    Launch.launch cluster ~name:"chaos" ~program ~placement:[ n0; n1 ] ~app_args:args ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  let plan =
    Faultsim.random_plan prng ~node_count:nodes ~horizon:(Simtime.ms 30)
      ~count:(1 + Rng.int prng 3)
  in
  let ctx =
    Printf.sprintf "seed %d [%s]" seed
      (String.concat "; " (List.map Faultsim.injection_to_string plan))
  in
  Faultsim.install_all fs plan;
  let result = start_checkpoint cluster (ckpt_items cluster app ~prefix:"chaos") in
  (* the operation must terminate: a stalled Manager is itself a failure *)
  let r =
    try wait_result cluster result
    with Cluster.Timeout _ -> Alcotest.fail (ctx ^ ": manager stalled")
  in
  assert_result_shape ctx r;
  (* let transient faults expire, then heal the permanent ones and drain the
     Agent-side timeout paths *)
  Cluster.run cluster ~until:(Simtime.add (Cluster.now cluster) (Simtime.ms 600)) ();
  Faultsim.heal_all fs;
  Cluster.run cluster ~until:(Simtime.add (Cluster.now cluster) (Simtime.ms 600)) ();
  let crashed = Faultsim.crashed_nodes fs in
  let app_nodes = [ n0; n1 ] in
  if List.for_all (fun n -> not (List.mem n crashed)) app_nodes then begin
    (* no application node died: the pods must still make progress all the
       way to completion, whatever happened to the checkpoint *)
    (try ignore (Launch.wait_done cluster ~timeout:(Simtime.sec 1200.0) app)
     with Cluster.Timeout m -> Alcotest.fail (ctx ^ ": app stalled: " ^ m));
    if not (has_log done_log) then Alcotest.fail (ctx ^ ": app produced no result")
  end;
  assert_clean ctx cluster fs;
  (* detach the fault-injection observers before the next seed: [Trace.clear]
     deliberately keeps subscriptions, so a stale hook would otherwise fire
     into this scenario's dead cluster from the next one's events *)
  Zapc.Trace.clear_observers (Faultsim.trace fs);
  { so_kinds = List.map (fun (i : Faultsim.injection) -> kind_of i.fault) plan }

let test_random_scenarios () =
  let n = n_seeds () in
  let kinds = Hashtbl.create 8 in
  for seed = 1 to n do
    let o = run_scenario seed in
    List.iter (fun k -> Hashtbl.replace kinds k ()) o.so_kinds
  done;
  Printf.printf "chaos: %d scenarios, fault kinds exercised: %s\n%!" n
    (String.concat ", " (Hashtbl.fold (fun k () acc -> k :: acc) kinds []));
  (* the sweep must exercise a meaningful slice of the fault space *)
  check tbool "covers >= 4 fault kinds" true (Hashtbl.length kinds >= 4)

(* --- availability: self-healing supervisor scenarios ------------------- *)

(* Knobs sized so a whole detect-recover cycle fits in tens of virtual
   milliseconds: fast heartbeats, cheap checkpoints/restores, and a phase
   timeout short enough that a recovery attempt into a hung node fails
   quickly but long enough for a healthy restore to finish. *)
let avail_params =
  { Params.default with
    phase_timeout = Simtime.ms 400;
    heartbeat_period = Simtime.ms 20;
    heartbeat_misses = 3;
    recover_backoff = Simtime.ms 40;
    recover_backoff_max = Simtime.ms 400;
    recover_retries = 5;
    ckpt_fixed = Simtime.ms 20;
    restore_fixed = Simtime.ms 60;
    cost_jitter = 0.2 }

(* Start an app plus periodic checkpoints plus the supervisor, and run
   until [n] epochs have completed. *)
let start_supervised ?(seed = 42) ?(epochs = 2) ?(incremental = false) () =
  let cluster = make_cluster ~params:avail_params ~seed () in
  let fs = Faultsim.create cluster in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 96 400) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  let svc =
    Periodic.start ~incremental cluster ~pods:app.Launch.pods ~prefix:"avail"
      ~period:(Simtime.ms 50) ~keep:2 ()
  in
  let sup = Supervisor.start ~trace:(Faultsim.trace fs) cluster svc in
  Cluster.run_until cluster ~timeout:(Simtime.sec 30.0) (fun () ->
      Periodic.last_good svc >= epochs && not (Manager.busy (Cluster.manager cluster)));
  (cluster, fs, app, svc, sup)

(* Acceptance: one node crashes mid-run and the app completes end-to-end
   with zero manual recovery calls — the supervisor detects the death via
   missed heartbeats and restarts from the last good epoch on survivors.
   Returns the observable timeline so the determinism test can replay it. *)
let run_crash_autorecovery seed =
  let cluster, fs, app, svc, sup = start_supervised ~seed () in
  check tbool "app still running at crash time" true (not (Launch.is_done app));
  let crash_time = Cluster.now cluster in
  Faultsim.install fs { fault = Crash_node { node = 1 }; trigger = Now };
  Cluster.run_until cluster ~timeout:(Simtime.sec 60.0) (fun () ->
      Supervisor.recoveries sup >= 1 || Supervisor.gave_up sup);
  check tbool "supervisor recovered (did not give up)" true
    (Supervisor.recoveries sup = 1);
  let detect = Option.get (Supervisor.last_detect sup) in
  let mttr_end = Option.get (Supervisor.last_recovered sup) in
  let detect_latency = Simtime.sub detect crash_time in
  let mttr = Simtime.sub mttr_end crash_time in
  (* detection needs heartbeat_misses consecutive silent beats, no more *)
  check tbool "detection latency positive" true (detect_latency > Simtime.zero);
  check tbool "detection within 10 heartbeats" true
    (detect_latency <= Simtime.ms 200);
  check tbool "recovery after detection" true (Simtime.compare mttr detect_latency > 0);
  check tbool "MTTR under a virtual second" true (mttr <= Simtime.sec 1.0);
  (* the recovered app must run to its correct result *)
  Cluster.run_until cluster ~timeout:(Simtime.sec 2400.0) (fun () ->
      has_log "bt_nas: checksum");
  Supervisor.stop sup;
  Periodic.stop svc;
  Cluster.run cluster ~until:(Simtime.add (Cluster.now cluster) (Simtime.ms 200)) ();
  assert_clean "auto-recovery" cluster fs;
  check tbool "watch set moved off the dead node" true
    (not (List.mem 1 (Supervisor.watched sup)));
  List.map
    (fun (t, w) -> Printf.sprintf "%d %s" t w)
    (Supervisor.events sup)

let test_crash_autorecovery () = ignore (run_crash_autorecovery 42)

(* determinism: the same seed replays the identical supervisor timeline
   (detect instant, attempts, backoffs, recovery instant) *)
let test_autorecovery_deterministic () =
  let a = run_crash_autorecovery 7 and b = run_crash_autorecovery 7 in
  check (Alcotest.list Alcotest.string) "same seed, same timeline" a b

(* Acceptance: the first recovery attempt runs into a *second* injected
   fault (the target Agent hangs the moment the death is declared), times
   out, and the supervisor retries with backoff until the hang heals. *)
let test_backoff_retry_after_second_fault () =
  let cluster, fs, app, svc, sup = start_supervised () in
  ignore app;
  (* the detection event itself triggers the second fault: node 2 — the
     recovery target for the dead node's pod — stalls for 600 ms *)
  Faultsim.install fs
    { fault = Hang_agent { node = 2; duration = Some (Simtime.ms 600) };
      trigger = On_phase { phase = "sup_detect:node1"; pod = None; skip = 0 } };
  Faultsim.install fs { fault = Crash_node { node = 1 }; trigger = Now };
  Cluster.run_until cluster ~timeout:(Simtime.sec 60.0) (fun () ->
      Supervisor.recoveries sup >= 1 || Supervisor.gave_up sup);
  check tbool "recovered despite the second fault" true
    (Supervisor.recoveries sup = 1);
  check tbool "first attempt failed, retried with backoff" true
    (Supervisor.total_attempts sup >= 2);
  check tbool "backoff event traced" true
    (List.exists
       (fun (_, w) ->
         String.length w >= 11 && String.equal (String.sub w 0 11) "sup_backoff")
       (Supervisor.events sup));
  Cluster.run_until cluster ~timeout:(Simtime.sec 2400.0) (fun () ->
      has_log "bt_nas: checksum");
  Supervisor.stop sup;
  Periodic.stop svc;
  Cluster.run cluster ~until:(Simtime.add (Cluster.now cluster) (Simtime.ms 200)) ();
  assert_clean "backoff-retry" cluster fs

(* Acceptance (sibling): every image on the primary replica rots just
   before the node crash; the automatic recovery reads from the intact
   second replica and the corruption counter proves the fallback ran. *)
let test_corrupt_primary_recovers_from_replica () =
  let cluster, fs, app, svc, sup = start_supervised () in
  ignore app;
  let storage = Cluster.storage cluster in
  check tbool "store is replicated" true (Storage.replica_count storage >= 2);
  Faultsim.install fs
    { fault = Corrupt_image { replica = 0; key = None }; trigger = Now };
  Faultsim.install fs { fault = Crash_node { node = 1 }; trigger = Now };
  Cluster.run_until cluster ~timeout:(Simtime.sec 60.0) (fun () ->
      Supervisor.recoveries sup >= 1 || Supervisor.gave_up sup);
  check tbool "recovered from the replica" true (Supervisor.recoveries sup = 1);
  check tbool "corruption was detected on the primary" true
    (Storage.corruption_detected storage > 0);
  (* the same facts through the metrics registry: fallbacks and detections
     are first-class instruments, not derived from trace strings *)
  let reg = Cluster.metrics cluster in
  check tbool "registry counted corruption detections" true
    (Zapc_obs.Metrics.counter reg "storage.corruption_detected" > 0);
  check tbool "registry counted replica fallbacks" true
    (Zapc_obs.Metrics.counter reg "storage.replica_fallbacks" > 0);
  check tbool "registry agrees with the storage counter" true
    (Zapc_obs.Metrics.counter reg "storage.corruption_detected"
     = Storage.corruption_detected storage);
  Cluster.run_until cluster ~timeout:(Simtime.sec 2400.0) (fun () ->
      has_log "bt_nas: checksum");
  (* Extension (storage bugfix 3): take the second replica out while the
     periodic service keeps writing epochs, so those epochs land on the
     primary only; healing must restore the replication factor by
     backfilling the missed copies, not just clear the outage flag. *)
  Storage.set_replica_fail storage ~replica:1 (Some "maintenance");
  check tbool "no re-replication before the outage" true
    (Zapc_obs.Metrics.counter reg "storage.rereplicated" = 0);
  let puts0 = Zapc_obs.Metrics.counter reg "storage.puts" in
  Cluster.run_until cluster ~timeout:(Simtime.sec 120.0) (fun () ->
      Zapc_obs.Metrics.counter reg "storage.puts" > puts0);
  check tbool "epochs were written during the outage" true
    (Zapc_obs.Metrics.counter reg "storage.puts" > puts0);
  Storage.heal_replicas storage;
  check tbool "heal re-replicated the outage-era copies" true
    (Zapc_obs.Metrics.counter reg "storage.rereplicated" > 0);
  check tbool "every key back at full replication" true
    (List.for_all
       (fun k -> Storage.replica_has storage ~replica:1 k)
       (Storage.keys storage));
  Supervisor.stop sup;
  Periodic.stop svc;
  Cluster.run cluster ~until:(Simtime.add (Cluster.now cluster) (Simtime.ms 200)) ();
  assert_clean "corrupt-primary" cluster fs

(* The storage instruments alone, with a controlled single read: corrupting
   the primary must cost exactly one corruption detection and exactly one
   replica fallback in the registry. *)
let test_replica_fallback_counters () =
  let module Metrics = Zapc_obs.Metrics in
  let module Value = Zapc_codec.Value in
  let engine = Engine.create ~seed:1 () in
  let metrics = Metrics.create () in
  let storage = Storage.create ~metrics ~replicas:2 engine in
  let img =
    Zapc_ckpt.Image.of_pod_image
      (Value.assoc
         [ ("pod_id", Value.int 1); ("name", Value.str "m");
           ("memory_bytes", Value.int 4096) ])
  in
  (match Storage.put storage "m.pod1" img with
   | Ok () -> ()
   | Error e -> Alcotest.fail ("put failed: " ^ e));
  check tbool "put counted once" true (Metrics.counter metrics "storage.puts" = 1);
  check tbool "healthy read served" true (Storage.get storage "m.pod1" <> None);
  check tbool "healthy read is no fallback" true
    (Metrics.counter metrics "storage.replica_fallbacks" = 0);
  check tbool "primary corrupted" true (Storage.corrupt storage ~replica:0 "m.pod1");
  check tbool "read survives via the replica" true
    (Storage.get storage "m.pod1" <> None);
  check tbool "exactly one corruption detected" true
    (Metrics.counter metrics "storage.corruption_detected" = 1);
  check tbool "exactly one replica fallback" true
    (Metrics.counter metrics "storage.replica_fallbacks" = 1);
  check tbool "absent key misses" true (Storage.get storage "nope" = None);
  check tbool "miss counted, not a fallback" true
    (Metrics.counter metrics "storage.get_misses" = 1
     && Metrics.counter metrics "storage.replica_fallbacks" = 1)

(* Satellite: replica outage mid-delta-chain.  Incremental epochs chain
   images across epochs (and prune condemns chained bases, exercising the
   deferred-GC path); the whole primary replica then goes dark and a node
   crashes.  The automatic recovery must fetch EVERY link of the last-good
   chain from the surviving replica to materialize the restart image. *)
let test_replica_outage_mid_delta_chain () =
  let cluster, fs, app, svc, sup = start_supervised ~epochs:3 ~incremental:true () in
  ignore app;
  let storage = Cluster.storage cluster in
  check tbool "store is replicated" true (Storage.replica_count storage >= 2);
  (* Run on until the LAST GOOD epoch is itself a delta: every
     (max_delta_chain + 1)-th epoch is a forced full, so the harness can
     stop on a chain head that has no base.  A delta epoch is never more
     than one period away. *)
  let good_is_delta () =
    let good = Periodic.last_good svc in
    good >= 2
    && List.exists
         (fun pod_id ->
           Storage.base_key storage (Printf.sprintf "avail.e%d.pod%d" good pod_id)
           <> None)
         (Periodic.pod_ids svc)
  in
  Cluster.run_until cluster ~timeout:(Simtime.sec 30.0) (fun () ->
      good_is_delta () && not (Manager.busy (Cluster.manager cluster)));
  check tbool "last good epoch is part of a delta chain" true (good_is_delta ());
  Storage.set_replica_fail storage ~replica:0 (Some "controller dark");
  Faultsim.install fs { fault = Crash_node { node = 1 }; trigger = Now };
  Cluster.run_until cluster ~timeout:(Simtime.sec 60.0) (fun () ->
      Supervisor.recoveries sup >= 1 || Supervisor.gave_up sup);
  check tbool "recovered across the outage" true (Supervisor.recoveries sup = 1);
  let reg = Cluster.metrics cluster in
  check tbool "chain links were resolved" true
    (Zapc_obs.Metrics.counter reg "storage.delta_resolved" > 0);
  check tbool "reads fell back past the dark replica" true
    (Zapc_obs.Metrics.counter reg "storage.replica_fallbacks" > 0);
  Storage.heal_replicas storage;
  Cluster.run_until cluster ~timeout:(Simtime.sec 2400.0) (fun () ->
      has_log "bt_nas: checksum");
  Supervisor.stop sup;
  Periodic.stop svc;
  Cluster.run cluster ~until:(Simtime.add (Cluster.now cluster) (Simtime.ms 200)) ();
  assert_clean "replica-outage-chain" cluster fs

(* Satellite: a failed epoch's partially written pod images are
   garbage-collected — storage holds exactly the completed epochs' keys. *)
let test_failed_epoch_gc () =
  let cluster = make_cluster ~params:avail_params () in
  let fs = Faultsim.create cluster in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
      ~app_args:(bt_args 96 400) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  let svc =
    Periodic.start cluster ~pods:app.Launch.pods ~prefix:"gcsvc"
      ~period:(Simtime.ms 50) ~keep:3 ()
  in
  let failures = ref 0 in
  Periodic.set_on_epoch svc (fun _ r -> if not r.Manager.r_ok then incr failures);
  Cluster.run_until cluster ~timeout:(Simtime.sec 30.0) (fun () ->
      Periodic.completed svc >= 1 && not (Manager.busy (Cluster.manager cluster)));
  let good = Periodic.last_good svc in
  (* break a channel in the next epoch's meta window: that epoch aborts
     after some pods may already have written their images *)
  Faultsim.install fs
    { fault = Break_channel { node = 1 };
      trigger = On_phase { phase = "meta_sent"; pod = None; skip = 0 } };
  Cluster.run_until cluster ~timeout:(Simtime.sec 30.0) (fun () -> !failures >= 1);
  Periodic.stop svc;
  Cluster.run cluster ~until:(Simtime.add (Cluster.now cluster) (Simtime.ms 300)) ();
  let svc_keys =
    List.filter
      (fun k -> String.length k >= 5 && String.equal (String.sub k 0 5) "gcsvc")
      (Storage.keys (Cluster.storage cluster))
  in
  (* exactly the completed epochs' images remain: two pods per good epoch,
     nothing from the failed epoch *)
  check (Alcotest.list Alcotest.string) "only completed epochs resident"
    (List.sort String.compare
       (List.concat_map
          (fun e ->
            List.map
              (fun (p : Pod.t) -> Printf.sprintf "gcsvc.e%d.pod%d" e p.pod_id)
              app.Launch.pods)
          (List.init good (fun i -> i + 1))))
    svc_keys;
  assert_clean "failed-epoch-gc" cluster fs

(* Tentpole scenario: hierarchical coordination under fire.  Fanout 3 over
   13 nodes hangs subtree {6,7,8} under node 1, which also hosts a pod; the
   node crashes in the checkpoint's ack-aggregation window.  The root must
   abort cleanly (no pod left paused anywhere — including deep under the
   severed hop), the supervisor detects the death, re-forms the tree over
   the 12 survivors BEFORE recovering, and subsequent periodic epochs
   checkpoint successfully over the re-formed topology. *)
let test_tree_subcoordinator_crash () =
  let params = { avail_params with Params.tree_fanout = 3 } in
  let cluster = make_cluster ~params ~nodes:13 () in
  let fs = Faultsim.create cluster in
  let app =
    Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1; 4; 5 ]
      ~app_args:(bt_args 96 400) ()
  in
  Cluster.run cluster ~until:(Simtime.ms 5) ();
  let svc =
    Periodic.start cluster ~pods:app.Launch.pods ~prefix:"tree"
      ~period:(Simtime.ms 50) ~keep:2 ()
  in
  let sup = Supervisor.start ~trace:(Faultsim.trace fs) cluster svc in
  Cluster.run_until cluster ~timeout:(Simtime.sec 30.0) (fun () ->
      Periodic.last_good svc >= 1 && not (Manager.busy (Cluster.manager cluster)));
  let reg = Cluster.metrics cluster in
  check tbool "commands flowed through the tree" true
    (Zapc_obs.Metrics.counter reg "mgr.tree.down_batches" > 0);
  check tbool "reports were aggregated by the relays" true
    (Zapc_obs.Metrics.counter reg "relay.up_batches" > 0);
  check tbool "formed over all 13 nodes" true
    (Zapc_obs.Metrics.gauge reg "mgr.tree.nodes" = 13.0);
  Faultsim.install fs
    { fault = Crash_node { node = 1 };
      trigger = On_phase { phase = "meta_sent"; pod = None; skip = 0 } };
  Cluster.run_until cluster ~timeout:(Simtime.sec 60.0) (fun () ->
      Supervisor.recoveries sup >= 1 || Supervisor.gave_up sup);
  check tbool "supervisor recovered (did not give up)" true
    (Supervisor.recoveries sup = 1);
  check tbool "tree re-formed over the 12 survivors" true
    (Zapc_obs.Metrics.gauge reg "mgr.tree.nodes" = 12.0);
  (* epochs keep completing through the re-formed hierarchy *)
  let good = Periodic.last_good svc in
  Cluster.run_until cluster ~timeout:(Simtime.sec 30.0) (fun () ->
      Periodic.last_good svc > good && not (Manager.busy (Cluster.manager cluster)));
  Cluster.run_until cluster ~timeout:(Simtime.sec 2400.0) (fun () ->
      has_log "bt_nas: checksum");
  Supervisor.stop sup;
  Periodic.stop svc;
  Cluster.run cluster ~until:(Simtime.add (Cluster.now cluster) (Simtime.ms 200)) ();
  (* "no orphaned paused pods": assert_clean audits every surviving node,
     including the re-attached pod-free subtree, for frozen pods and leaked
     in-flight operations *)
  assert_clean "tree-subcoordinator-crash" cluster fs;
  check tbool "watch set moved off the dead node" true
    (not (List.mem 1 (Supervisor.watched sup)))

(* determinism: the same seed yields the same injected-fault log *)
let test_scenario_determinism () =
  let fired_of seed =
    let prng = Rng.create ~seed:(9000 + seed) in
    let cluster = make_cluster ~seed:(1000 + seed) () in
    let fs = Faultsim.create cluster in
    let app =
      Launch.launch cluster ~name:"bt" ~program:"bt_nas" ~placement:[ 0; 1 ]
        ~app_args:(bt_args 96 20) ()
    in
    Cluster.run cluster ~until:(Simtime.ms 5) ();
    Faultsim.install_all fs
      (Faultsim.random_plan prng ~node_count:4 ~horizon:(Simtime.ms 30) ~count:3);
    let r = wait_result cluster (start_checkpoint cluster (ckpt_items cluster app ~prefix:"det")) in
    ignore r;
    List.map
      (fun (t, what) -> Printf.sprintf "%d %s" t what)
      (Faultsim.fired fs)
  in
  let a = fired_of 7 and b = fired_of 7 in
  check (Alcotest.list Alcotest.string) "same seed, same faults" a b

let () =
  Alcotest.run "chaos"
    [ ( "directed",
        [ Alcotest.test_case "mid-ckpt channel break" `Quick test_midckpt_channel_break;
          Alcotest.test_case "hung agent times out" `Quick test_hung_agent_times_out;
          Alcotest.test_case "storage outage aborts cleanly" `Quick
            test_storage_outage_aborts_cleanly;
          Alcotest.test_case "node crash mid-checkpoint" `Quick
            test_node_crash_mid_checkpoint;
          Alcotest.test_case "loss burst rides out" `Quick test_loss_burst_rides_out ] );
      ( "migration",
        [ Alcotest.test_case "live migrate under traffic" `Quick test_mig_under_traffic;
          Alcotest.test_case "destination crash mid-round" `Quick test_mig_dest_crash;
          Alcotest.test_case "source crash after handoff" `Quick test_mig_src_crash;
          Alcotest.test_case "channel break during residue" `Quick
            test_mig_residue_break;
          Alcotest.test_case "scenarios across seeds" `Quick test_mig_seed_sweep;
          Alcotest.test_case "scenario determinism" `Quick test_mig_deterministic ] );
      ( "availability",
        [ Alcotest.test_case "crash auto-recovery, zero manual calls" `Quick
            test_crash_autorecovery;
          Alcotest.test_case "auto-recovery determinism" `Quick
            test_autorecovery_deterministic;
          Alcotest.test_case "backoff retry under a second fault" `Quick
            test_backoff_retry_after_second_fault;
          Alcotest.test_case "corrupt primary recovers from replica" `Quick
            test_corrupt_primary_recovers_from_replica;
          Alcotest.test_case "replica fallback counters" `Quick
            test_replica_fallback_counters;
          Alcotest.test_case "replica outage mid delta chain" `Quick
            test_replica_outage_mid_delta_chain;
          Alcotest.test_case "failed epoch GC'd from storage" `Quick
            test_failed_epoch_gc;
          Alcotest.test_case "mid-tree sub-coordinator crash" `Quick
            test_tree_subcoordinator_crash ] );
      ( "random",
        [ Alcotest.test_case "seeded scenarios" `Quick test_random_scenarios;
          Alcotest.test_case "scenario determinism" `Quick test_scenario_determinism ] ) ]
