(* Tests for the four paper workloads: numerical correctness, and — the
   central transparency property — that a run interrupted by a coordinated
   checkpoint and restarted on different nodes produces exactly the same
   final answer as an uninterrupted run. *)

module Simtime = Zapc_sim.Simtime
module Value = Zapc_codec.Value
module Kernel = Zapc_simos.Kernel
module Proc = Zapc_simos.Proc
module Program = Zapc_simos.Program
module Pod = Zapc_pod.Pod
module Cluster = Zapc.Cluster
module Manager = Zapc.Manager
module Launch = Zapc_msg.Launch

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let logged : string list ref = ref []

let make_cluster ?(nodes = 4) ?(cpus = 1) () =
  Zapc_apps.Registry.register_all ();
  let cluster = Cluster.make ~seed:42 ~cpus ~params:Zapc.Params.default ~node_count:nodes () in
  logged := [];
  for i = 0 to nodes - 1 do
    Kernel.set_logger (Cluster.node cluster i).Cluster.n_kernel (fun _ _ m ->
        logged := m :: !logged)
  done;
  cluster

let find_log prefix =
  List.find_opt
    (fun s ->
      String.length s >= String.length prefix
      && String.equal (String.sub s 0 (String.length prefix)) prefix)
    !logged

(* Run an app to completion; if [interrupt] is set, snapshot at that virtual
   time, destroy the original pods, and restart on [targets].  Completion of
   the restarted run is detected by its result log ([result_prefix]): the
   restored pods may finish while the restart protocol is still reporting. *)
let run_app ?interrupt ~program ~result_prefix ~app_args ~placement () =
  let cluster = make_cluster () in
  let app = Launch.launch cluster ~name:program ~program ~placement ~app_args () in
  (match interrupt with
   | None -> ignore (Launch.wait_done cluster app)
   | Some (at, targets) ->
     Cluster.run cluster ~until:at ();
     if Launch.is_done app then ignore (Launch.wait_done cluster app)
     else begin
       let r = Cluster.snapshot cluster ~pods:app.Launch.pods ~key_prefix:"t" in
       check tbool "snapshot ok" true r.Manager.r_ok;
       List.iter Pod.destroy app.Launch.pods;
       let rr =
         Cluster.restart_app cluster ~pod_ids:(Launch.pod_ids app) ~target_nodes:targets
           ~key_prefix:"t"
       in
       check tbool "restart ok" true rr.Manager.r_ok;
       Cluster.run_until cluster ~timeout:(Simtime.sec 7200.0) (fun () ->
           find_log result_prefix <> None)
     end);
  !logged

(* --- CPI --- *)

let cpi_args =
  Zapc_apps.Cpi.params_to_value
    { Zapc_apps.Cpi.default_params with intervals = 400_000; chunks = 8 }

let test_cpi_correct () =
  ignore (run_app ~result_prefix:"cpi: pi ~=" ~program:"cpi" ~app_args:cpi_args ~placement:[ 0; 1; 2; 3 ] ());
  match find_log "cpi: pi ~=" with
  | Some line ->
    (* pi to ~10 digits: the integration really happened *)
    let v = Scanf.sscanf line "cpi: pi ~= %f" (fun f -> f) in
    check tbool "pi accurate" true (Float.abs (v -. Float.pi) < 1e-9)
  | None -> Alcotest.fail "no cpi result"

let test_cpi_transparent_restart () =
  ignore (run_app ~result_prefix:"cpi: pi ~=" ~program:"cpi" ~app_args:cpi_args ~placement:[ 0; 1 ] ());
  let reference = Option.get (find_log "cpi: pi ~=") in
  ignore
    (run_app
       ~interrupt:(Simtime.ms 1, [ 2; 3 ])
       ~result_prefix:"cpi: pi ~=" ~program:"cpi" ~app_args:cpi_args ~placement:[ 0; 1 ] ());
  match find_log "cpi: pi ~=" with
  | Some line -> check Alcotest.string "identical result" reference line
  | None -> Alcotest.fail "no cpi result after restart"

(* --- BT/NAS --- *)

let bt_args =
  Zapc_apps.Bt_nas.params_to_value
    { Zapc_apps.Bt_nas.default_params with g = 96; iters = 25 }

let test_bt_four_ranks () =
  ignore (run_app ~result_prefix:"bt_nas: checksum" ~program:"bt_nas" ~app_args:bt_args ~placement:[ 0; 1; 2; 3 ] ());
  match find_log "bt_nas: checksum" with
  | Some _ -> ()
  | None -> Alcotest.fail "no bt result"

let test_bt_transparent_restart_4 () =
  ignore (run_app ~result_prefix:"bt_nas: checksum" ~program:"bt_nas" ~app_args:bt_args ~placement:[ 0; 1; 2; 3 ] ());
  let reference = Option.get (find_log "bt_nas: checksum") in
  ignore
    (run_app
       ~interrupt:(Simtime.ms 8, [ 3; 2; 1; 0 ])
       ~result_prefix:"bt_nas: checksum" ~program:"bt_nas" ~app_args:bt_args ~placement:[ 0; 1; 2; 3 ] ());
  match find_log "bt_nas: checksum" with
  | Some line -> check Alcotest.string "identical checksum" reference line
  | None -> Alcotest.fail "no bt result after restart"

(* --- Bratu --- *)

let bratu_args =
  Zapc_apps.Bratu.params_to_value
    { Zapc_apps.Bratu.default_params with g = 48; max_iters = 40 }

let test_bratu_converges () =
  ignore (run_app ~result_prefix:"bratu: residual" ~program:"bratu" ~app_args:bratu_args ~placement:[ 0; 1 ] ());
  match find_log "bratu: residual" with
  | Some line ->
    let r = Scanf.sscanf line "bratu: residual %f" (fun f -> f) in
    (* the nonlinear relaxation really reduces the residual *)
    check tbool "residual finite and small" true (Float.is_finite r && r < 1.0)
  | None -> Alcotest.fail "no bratu result"

let test_bratu_transparent_restart () =
  ignore (run_app ~result_prefix:"bratu: residual" ~program:"bratu" ~app_args:bratu_args ~placement:[ 0; 1 ] ());
  let reference = Option.get (find_log "bratu: residual") in
  ignore
    (run_app
       ~interrupt:(Simtime.ms 3, [ 2; 3 ])
       ~result_prefix:"bratu: residual" ~program:"bratu" ~app_args:bratu_args ~placement:[ 0; 1 ] ());
  match find_log "bratu: residual" with
  | Some line -> check Alcotest.string "identical residual" reference line
  | None -> Alcotest.fail "no bratu result after restart"

(* --- POV-Ray --- *)

let pov_args =
  Zapc_apps.Povray.params_to_value
    { Zapc_apps.Povray.default_params with width = 160; height = 96; block_rows = 8 }

let test_povray_parallel_matches_serial () =
  ignore (run_app ~result_prefix:"povray: rendered" ~program:"povray" ~app_args:pov_args ~placement:[ 0 ] ());
  let serial = Option.get (find_log "povray: rendered") in
  ignore (run_app ~result_prefix:"povray: rendered" ~program:"povray" ~app_args:pov_args ~placement:[ 0; 1; 2 ] ());
  let parallel = Option.get (find_log "povray: rendered") in
  (* same framebuffer checksum regardless of work distribution *)
  check Alcotest.string "same image" serial parallel

let test_povray_transparent_restart () =
  ignore (run_app ~result_prefix:"povray: rendered" ~program:"povray" ~app_args:pov_args ~placement:[ 0; 1; 2 ] ());
  let reference = Option.get (find_log "povray: rendered") in
  ignore
    (run_app
       ~interrupt:(Simtime.ms 10, [ 3; 3; 3 ])
       ~result_prefix:"povray: rendered" ~program:"povray" ~app_args:pov_args ~placement:[ 0; 1; 2 ] ());
  match find_log "povray: rendered" with
  | Some line -> check Alcotest.string "identical image" reference line
  | None -> Alcotest.fail "no povray result after restart"

(* The master's output image lands on the shared file system under the
   pod's namespace; it is written even when the run was interrupted and
   restarted on different nodes, at the same pod-relative path (FS state is
   not part of the checkpoint: the shared store plus the pod's stable
   chroot prefix make it reachable from anywhere — paper section 3). *)
let test_povray_output_file_survives_restart () =
  let cluster = make_cluster () in
  let app =
    Launch.launch cluster ~name:"povray" ~program:"povray" ~placement:[ 0; 1; 2 ]
      ~app_args:pov_args ()
  in
  let master_pod = List.hd app.Launch.pods in
  Cluster.run cluster ~until:(Simtime.ms 10) ();
  let r = Cluster.snapshot cluster ~pods:app.Launch.pods ~key_prefix:"povfs" in
  check tbool "snapshot" true r.Manager.r_ok;
  List.iter Pod.destroy app.Launch.pods;
  let rr =
    Cluster.restart_app cluster ~pod_ids:(Launch.pod_ids app) ~target_nodes:[ 3; 3; 3 ]
      ~key_prefix:"povfs"
  in
  check tbool "restart" true rr.Manager.r_ok;
  Cluster.run_until cluster ~timeout:(Simtime.sec 7200.0) (fun () ->
      find_log "povray: rendered" <> None);
  let fs = Kernel.fs (Cluster.node cluster 0).Cluster.n_kernel in
  match Zapc_simos.Simfs.get fs (Pod.fs_root master_pod ^ "/out.pgm") with
  | Some pgm ->
    check tbool "valid PGM header" true
      (String.length pgm > 15 && String.equal (String.sub pgm 0 2) "P5");
    check tint "full image present" (String.length "P5\n160 96\n255\n" + (160 * 96))
      (String.length pgm)
  | None -> Alcotest.fail "output file missing after restart"

(* the optional pre-reactivation file-system snapshot (paper section 4)
   copies the pod's subtree on the shared store *)
let test_fs_snapshot_option () =
  Zapc_apps.Registry.register_all ();
  let params = { Zapc.Params.default with Zapc.Params.fs_snapshot = true } in
  let cluster = Cluster.make ~seed:42 ~params ~node_count:2 () in
  let app =
    Launch.launch cluster ~name:"povray" ~program:"povray" ~placement:[ 0 ]
      ~app_args:pov_args ()
  in
  (* let the single-rank master render and write its file *)
  ignore (Launch.wait_done cluster app);
  let pod = List.hd app.Launch.pods in
  let r = Cluster.snapshot cluster ~pods:[ pod ] ~key_prefix:"fssnap" in
  check tbool "snapshot with fs copy" true r.Manager.r_ok;
  let fs = Kernel.fs (Cluster.node cluster 0).Cluster.n_kernel in
  let snap_path =
    Printf.sprintf "/snapshots/fssnap.pod%d%s/out.pgm" pod.Pod.pod_id ""
  in
  match Zapc_simos.Simfs.get fs snap_path with
  | Some copy ->
    check tbool "snapshot copy equals original" true
      (Zapc_simos.Simfs.get fs (Pod.fs_root pod ^ "/out.pgm") = Some copy)
  | None -> Alcotest.failf "no fs snapshot at %s" snap_path

(* --- transparency as a property ---

   The central claim quantified: for ANY interruption instant, checkpointing
   and restarting on other nodes yields the uninterrupted run's exact
   result.  qcheck draws the instant; the app is BT (communication-heavy, so
   arbitrary instants land inside sends, receives, collectives, and compute
   slices). *)

let prop_restart_any_time =
  let reference = lazy (
    ignore (run_app ~result_prefix:"bt_nas: checksum" ~program:"bt_nas"
              ~app_args:bt_args ~placement:[ 0; 1 ] ());
    Option.get (find_log "bt_nas: checksum"))
  in
  QCheck.Test.make ~name:"restart at any instant preserves the result" ~count:6
    QCheck.(int_range 200 12_000)
    (fun interrupt_us ->
      let reference = Lazy.force reference in
      ignore
        (run_app
           ~interrupt:(Zapc_sim.Simtime.us interrupt_us, [ 3; 2 ])
           ~result_prefix:"bt_nas: checksum" ~program:"bt_nas" ~app_args:bt_args
           ~placement:[ 0; 1 ] ());
      match find_log "bt_nas: checksum" with
      | Some line -> String.equal line reference
      | None -> false)

(* --- pipeline (multi-process pod with pipe IPC) --- *)

let pipeline_args =
  Zapc_apps.Pipeline.params_to_value
    { Zapc_apps.Pipeline.default_params with lines = 1_500; ns_per_line = 30_000 }

let launch_pipeline cluster =
  let pod = Cluster.create_pod cluster ~node_idx:0 ~name:"pipeline" in
  Cluster.link_pods [ pod ];
  let driver = Pod.spawn pod ~program:"pipeline" ~args:pipeline_args in
  (pod, driver)

let test_pipeline_correct () =
  let cluster = make_cluster () in
  let _, driver = launch_pipeline cluster in
  Cluster.run_until cluster ~timeout:(Simtime.sec 600.0) (fun () ->
      driver.Proc.exit_code <> None);
  check tbool "driver clean exit" true (driver.Proc.exit_code = Some 0);
  match find_log "pipeline:" with
  | Some line ->
    (* 1500 records, keep every 3rd -> 500 *)
    check tbool "record count" true
      (Scanf.sscanf line "pipeline: %d records" (fun n -> n) = 500)
  | None -> Alcotest.fail "no pipeline result"

let test_pipeline_transparent_restart () =
  let cluster = make_cluster () in
  let _, driver = launch_pipeline cluster in
  Cluster.run_until cluster ~timeout:(Simtime.sec 600.0) (fun () ->
      driver.Proc.exit_code <> None);
  let reference = Option.get (find_log "pipeline:") in
  (* same workload, checkpointed mid-stream and restarted on another node *)
  let cluster = make_cluster () in
  let pod, driver = launch_pipeline cluster in
  Cluster.run cluster ~until:(Simtime.ms 20) ();
  check tbool "mid-stream" true (driver.Proc.exit_code = None);
  let r = Cluster.snapshot cluster ~pods:[ pod ] ~key_prefix:"pipe" in
  check tbool "snapshot ok" true r.Manager.r_ok;
  (* the image carries four processes and two pipes *)
  (match List.assoc_opt pod.Pod.pod_id r.Manager.r_stats with
   | Some st -> check Alcotest.int "procs in image" 4 st.Zapc.Protocol.st_procs
   | None -> Alcotest.fail "no stats");
  Pod.destroy pod;
  let rr =
    Cluster.restart_app cluster ~pod_ids:[ pod.Pod.pod_id ] ~target_nodes:[ 3 ]
      ~key_prefix:"pipe"
  in
  check tbool "restart ok" true rr.Manager.r_ok;
  Cluster.run_until cluster ~timeout:(Simtime.sec 600.0) (fun () ->
      find_log "pipeline:" <> None);
  check Alcotest.string "identical digest" reference
    (Option.get (find_log "pipeline:"))

(* --- daemons --- *)

let test_daemons_run_alongside () =
  let cluster = make_cluster () in
  let app =
    Launch.launch cluster ~name:"cpi" ~program:"cpi" ~app_args:cpi_args ~placement:[ 0; 1 ] ()
  in
  check tint "one daemon per pod" 2 (List.length app.Launch.daemons);
  ignore (Launch.wait_done cluster app);
  (* ranks exited, daemons still alive *)
  List.iter
    (fun (d : Proc.t) -> check tbool "daemon alive" true (d.Proc.exit_code = None))
    app.Launch.daemons

(* --- served traffic (smoke) --- *)

(* Fast version of the @serve battery pipeline: a small client population
   against the sharded kv service, one coordinated checkpoint while requests
   are in flight, exactly-once delivery asserted at the end.  The full
   1000-connection chaos matrix lives in serve_battery.ml behind the @serve
   alias. *)
let test_serve_smoke () =
  let cfg =
    { Zapc_apps.Serve.default_cfg with
      n_conns = 120; reqs_per_conn = 2; period = Simtime.ms 40 }
  in
  let t = Zapc_apps.Serve.setup ~nodes:4 ~seed:7 ~cfg () in
  let cluster = t.Zapc_apps.Serve.cluster in
  Cluster.run cluster ~until:(Simtime.ms 30) ();
  let r = Cluster.snapshot cluster ~pods:t.Zapc_apps.Serve.servers ~key_prefix:"smoke" in
  check tbool "checkpoint under load ok" true r.Manager.r_ok;
  Zapc_apps.Serve.wait_done t;
  let s = Zapc_apps.Serve.client_stats t in
  let expected = Zapc_apps.Serve.total_expected t in
  check tint "issued" expected s.st_issued;
  check tint "completed exactly once" expected s.st_completed;
  check tint "no duplicate responses" 0 s.st_dups;
  check tint "nothing in flight" 0 s.st_inflight;
  for shard = 0 to cfg.nshards - 1 do
    check tbool "shard digest non-zero" true (Zapc_apps.Serve.digest t ~shard <> 0)
  done;
  let nf = Zapc_simnet.Fabric.netfilter (Cluster.fabric cluster) in
  check tint "no leaked netfilter rules" 0 (Zapc_simnet.Netfilter.blocked_count nf)

let () =
  Alcotest.run "apps"
    [ ( "cpi",
        [ Alcotest.test_case "computes pi" `Quick test_cpi_correct;
          Alcotest.test_case "transparent restart" `Quick test_cpi_transparent_restart ] );
      ( "bt_nas",
        [ Alcotest.test_case "four ranks" `Quick test_bt_four_ranks;
          Alcotest.test_case "transparent restart x4" `Quick test_bt_transparent_restart_4 ]
      );
      ( "bratu",
        [ Alcotest.test_case "converges" `Quick test_bratu_converges;
          Alcotest.test_case "transparent restart" `Quick test_bratu_transparent_restart ] );
      ( "povray",
        [ Alcotest.test_case "parallel = serial image" `Quick
            test_povray_parallel_matches_serial;
          Alcotest.test_case "transparent restart" `Quick test_povray_transparent_restart;
          Alcotest.test_case "output file survives restart" `Quick
            test_povray_output_file_survives_restart;
          Alcotest.test_case "fs snapshot option" `Quick test_fs_snapshot_option ] );
      ( "pipeline",
        [ Alcotest.test_case "correct" `Quick test_pipeline_correct;
          Alcotest.test_case "transparent restart" `Quick
            test_pipeline_transparent_restart ] );
      ("daemons", [ Alcotest.test_case "alongside" `Quick test_daemons_run_alongside ]);
      ( "serve",
        [ Alcotest.test_case "checkpoint under live clients" `Quick test_serve_smoke ]
      );
      ("properties", [ QCheck_alcotest.to_alcotest prop_restart_any_time ]) ]
