(* Tests for the simulated network stack: socket buffers, TCP state machine
   and reliability, urgent data, UDP, netfilter semantics, and the
   alternate-receive-queue interposition that network-state restore uses. *)

module Simtime = Zapc_sim.Simtime
module Engine = Zapc_sim.Engine
module Addr = Zapc_simnet.Addr
module Packet = Zapc_simnet.Packet
module Fabric = Zapc_simnet.Fabric
module Netfilter = Zapc_simnet.Netfilter
module Netstack = Zapc_simnet.Netstack
module Socket = Zapc_simnet.Socket
module Sockbuf = Zapc_simnet.Sockbuf
module Sockopt = Zapc_simnet.Sockopt
module Tcp = Zapc_simnet.Tcp
module Errno = Zapc_simnet.Errno

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

type env = {
  engine : Engine.t;
  fabric : Fabric.t;
  ns0 : Netstack.t;
  ns1 : Netstack.t;
  ip0 : Addr.ip;
  ip1 : Addr.ip;
}

let setup ?config ?(seed = 11) () =
  let engine = Engine.create ~seed () in
  let fabric = Fabric.create ?config engine in
  let ns0 = Netstack.create ~node:0 fabric in
  let ns1 = Netstack.create ~node:1 fabric in
  let ip0 = Addr.make_ip 10 0 0 1 and ip1 = Addr.make_ip 10 0 0 2 in
  Netstack.add_ip ns0 ip0;
  Netstack.add_ip ns1 ip1;
  { engine; fabric; ns0; ns1; ip0; ip1 }

let run env = Engine.run ~max_events:200000 env.engine
let run_for env d = Engine.run ~until:(Simtime.add (Engine.now env.engine) d) ~max_events:200000 env.engine

(* Establish a TCP connection: returns (client, server) sockets. *)
let establish ?(port = 7000) env =
  let listener = Netstack.new_socket env.ns1 Socket.Stream in
  (match Netstack.bind env.ns1 listener { Addr.ip = env.ip1; port } with
   | Ok () -> ()
   | Error e -> Alcotest.failf "bind: %s" (Errno.to_string e));
  (match Netstack.listen env.ns1 listener 8 with
   | Ok () -> ()
   | Error e -> Alcotest.failf "listen: %s" (Errno.to_string e));
  let client = Netstack.new_socket env.ns0 Socket.Stream in
  (match Netstack.connect_start env.ns0 client { Addr.ip = env.ip1; port } with
   | Ok () -> ()
   | Error e -> Alcotest.failf "connect: %s" (Errno.to_string e));
  run env;
  check tbool "client established" true (Socket.tcp_state client = Socket.St_established);
  let server =
    match Netstack.accept_take listener with
    | Some s -> s
    | None -> Alcotest.fail "no connection in accept queue"
  in
  (listener, client, server)

let send_all s data =
  match Tcp.send_data s data with
  | Ok n when n = String.length data -> ()
  | Ok n -> Alcotest.failf "short send %d/%d" n (String.length data)
  | Error e -> Alcotest.failf "send: %s" (Errno.to_string e)

let recv_str ?(n = 1 lsl 20) s =
  match s.Socket.dispatch.d_recvmsg s Socket.plain_recv n with
  | Socket.Rv_data d -> d
  | Socket.Rv_eof -> ""
  | Socket.Rv_block -> "<block>"
  | Socket.Rv_err e -> "<err:" ^ Errno.to_string e ^ ">"
  | Socket.Rv_from (_, d) -> d

(* --- sockbuf --- *)

let test_sockbuf_basic () =
  let b = Sockbuf.create () in
  Sockbuf.push b "hello ";
  Sockbuf.push b "world";
  check tint "len" 11 (Sockbuf.length b);
  check tstr "peek" "hello" (Sockbuf.peek b 5);
  check tint "peek non-destructive" 11 (Sockbuf.length b);
  check tstr "pop" "hello " (Sockbuf.pop b 6);
  check tstr "pop across chunks" "world" (Sockbuf.pop b 100);
  check tbool "empty" true (Sockbuf.is_empty b)

let test_sockbuf_partial_chunks () =
  let b = Sockbuf.create () in
  Sockbuf.push b "abcdef";
  check tstr "pop2" "ab" (Sockbuf.pop b 2);
  Sockbuf.push b "ghi";
  check tstr "contents" "cdefghi" (Sockbuf.contents b);
  Sockbuf.drop b 3;
  check tstr "after drop" "fghi" (Sockbuf.contents b)

let prop_sockbuf_fifo =
  QCheck.Test.make ~name:"sockbuf is a byte FIFO" ~count:200
    QCheck.(list (string_of_size Gen.(int_bound 20)))
    (fun chunks ->
      let b = Sockbuf.create () in
      List.iter (Sockbuf.push b) chunks;
      let all = String.concat "" chunks in
      let got = Buffer.create 64 in
      while not (Sockbuf.is_empty b) do
        Buffer.add_string got (Sockbuf.pop b 3)
      done;
      String.equal all (Buffer.contents got))

(* --- TCP --- *)

let test_tcp_handshake () =
  let env = setup () in
  let _, client, server = establish env in
  check tbool "server established" true (Socket.tcp_state server = Socket.St_established);
  check tbool "client bound" true (client.Socket.local <> None);
  check tbool "server remote is client" true
    (Addr.equal (Option.get server.Socket.remote) (Option.get client.Socket.local))

let test_tcp_data_transfer () =
  let env = setup () in
  let _, client, server = establish env in
  send_all client "hello over tcp";
  run env;
  check tstr "payload" "hello over tcp" (recv_str server);
  (* and the reverse direction *)
  send_all server "reply";
  run env;
  check tstr "reply" "reply" (recv_str client)

let test_tcp_large_transfer () =
  let env = setup () in
  let _, client, server = establish env in
  (* larger than both MSS and the congestion window *)
  let data = String.init 300_000 (fun i -> Char.chr (i land 0xff)) in
  let sent = ref 0 in
  let received = Buffer.create (String.length data) in
  let rec pump () =
    (* send what fits, drain receiver, repeat *)
    if !sent < String.length data then begin
      match Tcp.send_data client (String.sub data !sent (String.length data - !sent)) with
      | Ok n -> sent := !sent + n
      | Error e -> Alcotest.failf "send: %s" (Errno.to_string e)
    end;
    run_for env (Simtime.ms 50);
    let chunk = recv_str server in
    if chunk <> "<block>" then Buffer.add_string received chunk;
    Tcp.after_app_read server;
    if Buffer.length received < String.length data then pump ()
  in
  pump ();
  check tbool "all bytes in order" true (String.equal data (Buffer.contents received))

let test_tcp_loss_recovery () =
  let env = setup () in
  let _, client, server = establish env in
  (* heavy loss; retransmission must still deliver everything in order *)
  Fabric.set_loss_prob env.fabric 0.2;
  let data = String.init 60_000 (fun i -> Char.chr ((i * 7) land 0xff)) in
  let sent = ref 0 in
  let received = Buffer.create (String.length data) in
  let guard = ref 0 in
  while Buffer.length received < String.length data && !guard < 2000 do
    incr guard;
    (if !sent < String.length data then
       match Tcp.send_data client (String.sub data !sent (String.length data - !sent)) with
       | Ok n -> sent := !sent + n
       | Error e -> Alcotest.failf "send: %s" (Errno.to_string e));
    run_for env (Simtime.ms 100);
    let chunk = recv_str server in
    if chunk <> "<block>" then Buffer.add_string received chunk;
    Tcp.after_app_read server
  done;
  Fabric.set_loss_prob env.fabric 0.0;
  check tbool "lossy link delivered everything in order" true
    (String.equal data (Buffer.contents received))

(* A checkpoint-image-sized stream over a link with 5% packet loss — the
   condition the restart protocol relies on when images are streamed
   between Agents.  Retransmission must deliver the image intact, and the
   whole exchange must be a pure function of the engine seed: two runs with
   the same seed produce byte-identical images on identical timelines. *)
let stream_image_under_loss ~seed =
  let config = { Fabric.default_config with loss_prob = 0.05 } in
  let env = setup ~config ~seed () in
  let _, client, server = establish env in
  (* synthetic image: header + sections with varied byte patterns *)
  let image =
    String.concat ""
      ("ZAPC-IMG\x01"
       :: List.init 40 (fun s ->
              String.init 2048 (fun i -> Char.chr ((s * 131 + i * 7 + (i lsr 5)) land 0xff))))
  in
  let sent = ref 0 in
  let received = Buffer.create (String.length image) in
  let guard = ref 0 in
  while Buffer.length received < String.length image && !guard < 4000 do
    incr guard;
    (if !sent < String.length image then
       match Tcp.send_data client (String.sub image !sent (String.length image - !sent)) with
       | Ok n -> sent := !sent + n
       | Error e -> Alcotest.failf "send: %s" (Errno.to_string e));
    run_for env (Simtime.ms 50);
    let chunk = recv_str server in
    if chunk <> "<block>" then Buffer.add_string received chunk;
    Tcp.after_app_read server
  done;
  (image, Buffer.contents received, Engine.now env.engine,
   Fabric.packets_delivered env.fabric, Fabric.packets_dropped env.fabric)

let test_tcp_image_stream_lossy_deterministic () =
  let image, got, t1, delivered1, dropped1 = stream_image_under_loss ~seed:23 in
  check tbool "image intact under 5% loss" true (String.equal image got);
  check tbool "loss actually happened" true (dropped1 > 0);
  (* same seed: bit-identical delivery on an identical timeline *)
  let _, got2, t2, delivered2, dropped2 = stream_image_under_loss ~seed:23 in
  check tstr "byte-identical images across runs" got got2;
  check tbool "identical finish time" true (Simtime.compare t1 t2 = 0);
  check tint "identical delivered count" delivered1 delivered2;
  check tint "identical dropped count" dropped1 dropped2;
  (* a different seed draws a different loss pattern (sanity: the RNG is
     actually in the loop) but still delivers the image *)
  let _, got3, _, _, dropped3 = stream_image_under_loss ~seed:24 in
  check tbool "other seed still intact" true (String.equal image got3);
  check tbool "other seed, other loss pattern" true (dropped3 <> dropped1)

let test_tcp_fin_eof () =
  let env = setup () in
  let _, client, server = establish env in
  send_all client "last words";
  Tcp.shutdown_write client;
  run env;
  check tstr "data before fin" "last words" (recv_str server);
  check tstr "eof" "" (recv_str server);
  (* server can still write (half duplex) *)
  send_all server "still open";
  run env;
  check tstr "half duplex" "still open" (recv_str client)

let test_tcp_full_close () =
  let env = setup () in
  let _, client, server = establish env in
  Tcp.close client;
  Tcp.close server;
  run env;
  (* both sides wind down to Closed (via TIME_WAIT) *)
  run_for env (Simtime.sec 2.0);
  check tbool "client closed" true
    (match Socket.tcp_state client with Socket.St_closed | Socket.St_time_wait -> true | _ -> false);
  check tbool "server closed" true
    (match Socket.tcp_state server with Socket.St_closed | Socket.St_time_wait -> true | _ -> false)

let test_tcp_connection_refused () =
  let env = setup () in
  let client = Netstack.new_socket env.ns0 Socket.Stream in
  (match Netstack.connect_start env.ns0 client { Addr.ip = env.ip1; port = 9999 } with
   | Ok () -> ()
   | Error e -> Alcotest.failf "connect: %s" (Errno.to_string e));
  run env;
  check tbool "refused" true
    (Socket.tcp_state client = Socket.St_closed && client.Socket.err = Some Errno.ECONNREFUSED)

let test_tcp_oob () =
  let env = setup () in
  let _, client, server = establish env in
  send_all client "normal";
  (match Tcp.send_oob client '!' with
   | Ok () -> ()
   | Error e -> Alcotest.failf "oob: %s" (Errno.to_string e));
  run env;
  (* urgent byte is out of band: not in the stream *)
  check tstr "stream data" "normal" (recv_str server);
  check tbool "oob byte present" true (server.Socket.oob_byte = Some '!');
  (match server.Socket.dispatch.d_recvmsg server { Socket.peek = false; oob = true; dontwait = false } 1 with
   | Socket.Rv_data "!" -> ()
   | _ -> Alcotest.fail "MSG_OOB read failed");
  check tbool "oob consumed" true (server.Socket.oob_byte = None)

let test_tcp_peek () =
  let env = setup () in
  let _, client, server = establish env in
  send_all client "peekable";
  run env;
  (match server.Socket.dispatch.d_recvmsg server { Socket.peek = true; oob = false; dontwait = false } 4 with
   | Socket.Rv_data "peek" -> ()
   | _ -> Alcotest.fail "peek failed");
  check tstr "data still there" "peekable" (recv_str server)

let test_tcp_zero_window_flow_control () =
  let env = setup () in
  let _, client, server = establish env in
  (* tiny receive buffer on the server: sender must stall, then resume *)
  Sockopt.set server.Socket.opts Sockopt.SO_RCVBUF 4096;
  let data = String.init 40_000 (fun i -> Char.chr (i land 0xff)) in
  let sent = ref 0 in
  let received = Buffer.create 40_000 in
  let guard = ref 0 in
  while Buffer.length received < String.length data && !guard < 500 do
    incr guard;
    (if !sent < String.length data then
       match Tcp.send_data client (String.sub data !sent (String.length data - !sent)) with
       | Ok n -> sent := !sent + n
       | Error _ -> ());
    run_for env (Simtime.ms 30);
    (* receiver drains slowly *)
    let chunk =
      match server.Socket.dispatch.d_recvmsg server Socket.plain_recv 2048 with
      | Socket.Rv_data d -> d
      | _ -> ""
    in
    Buffer.add_string received chunk;
    Tcp.after_app_read server;
    run_for env (Simtime.ms 5)
  done;
  check tbool "flow controlled transfer completes in order" true
    (String.equal data (Buffer.contents received));
  check tbool "receive queue never blew past rcvbuf" true
    (Sockbuf.length server.Socket.recvq <= 3 * 4096)

(* netfilter blocks both directions; in-flight data is dropped and
   retransmission recovers it after unblocking (the checkpoint scenario) *)
let test_netfilter_block_and_recover () =
  let env = setup () in
  let _, client, server = establish env in
  let nf = Fabric.netfilter env.fabric in
  send_all client "before-block ";
  run env;
  check tstr "pre" "before-block " (recv_str server);
  (* block the server's address, then send: data must NOT arrive *)
  Netfilter.block nf env.ip1;
  send_all client "during-block ";
  run_for env (Simtime.ms 50);
  check tstr "blocked" "<block>" (recv_str server);
  (* unblock; RTO-based retransmission delivers it *)
  Netfilter.unblock nf env.ip1;
  run_for env (Simtime.sec 8.0);
  check tstr "recovered after unblock" "during-block " (recv_str server)

let test_altqueue_interposition () =
  let env = setup () in
  let _, client, server = establish env in
  (* park restored data in the alternate queue, then deliver new data *)
  Socket.install_altqueue server "RESTORED.";
  check tbool "interposed" true server.Socket.dispatch.interposed;
  send_all client "FRESH";
  run env;
  (* restored data must be consumed before anything newer *)
  check tstr "altq first" "RESTORED." (recv_str server ~n:9);
  check tstr "then fresh data" "FRESH" (recv_str server);
  check tbool "uninstalled after depletion" true (not server.Socket.dispatch.interposed)

let test_altqueue_poll_and_release () =
  let env = setup () in
  let _, _, server = establish env in
  Socket.install_altqueue server "x";
  let ev = server.Socket.dispatch.d_poll server in
  check tbool "readable via altq" true ev.Socket.readable;
  server.Socket.dispatch.d_release server;
  check tbool "released" true (Sockbuf.is_empty server.Socket.altq);
  check tbool "uninstalled" true (not server.Socket.dispatch.interposed)

(* --- UDP --- *)

let test_udp_basic () =
  let env = setup () in
  let a = Netstack.new_socket env.ns0 Socket.Dgram in
  let b = Netstack.new_socket env.ns1 Socket.Dgram in
  (match Netstack.bind env.ns1 b { Addr.ip = env.ip1; port = 5353 } with
   | Ok () -> ()
   | Error e -> Alcotest.failf "bind: %s" (Errno.to_string e));
  (match Netstack.sendto env.ns0 a { Addr.ip = env.ip1; port = 5353 } "ping" with
   | Ok 4 -> ()
   | _ -> Alcotest.fail "sendto");
  run env;
  (match b.Socket.dispatch.d_recvmsg b Socket.plain_recv 100 with
   | Socket.Rv_from (from, "ping") ->
     check tbool "source ip" true (Addr.equal_ip from.Addr.ip env.ip0)
   | _ -> Alcotest.fail "recvfrom");
  (* datagram boundaries preserved *)
  ignore (Netstack.sendto env.ns0 a { Addr.ip = env.ip1; port = 5353 } "one");
  ignore (Netstack.sendto env.ns0 a { Addr.ip = env.ip1; port = 5353 } "two");
  run env;
  (match b.Socket.dispatch.d_recvmsg b Socket.plain_recv 100 with
   | Socket.Rv_from (_, "one") -> ()
   | _ -> Alcotest.fail "boundary 1");
  (match b.Socket.dispatch.d_recvmsg b Socket.plain_recv 100 with
   | Socket.Rv_from (_, "two") -> ()
   | _ -> Alcotest.fail "boundary 2")

let test_udp_connected_demux () =
  let env = setup () in
  let b = Netstack.new_socket env.ns1 Socket.Dgram in
  (match Netstack.bind env.ns1 b { Addr.ip = env.ip1; port = 6000 } with
   | Ok () -> ()
   | Error e -> Alcotest.failf "bind: %s" (Errno.to_string e));
  let a = Netstack.new_socket env.ns0 Socket.Dgram in
  (match Netstack.bind env.ns0 a { Addr.ip = env.ip0; port = 6001 } with
   | Ok () -> ()
   | Error e -> Alcotest.failf "bind: %s" (Errno.to_string e));
  (match Netstack.connect_start env.ns0 a { Addr.ip = env.ip1; port = 6000 } with
   | Ok () -> ()
   | Error e -> Alcotest.failf "connect: %s" (Errno.to_string e));
  (match
     Netstack.sendto env.ns0 a (Option.get a.Socket.remote) "via-connected"
   with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "send: %s" (Errno.to_string e));
  run env;
  (match b.Socket.dispatch.d_recvmsg b Socket.plain_recv 100 with
   | Socket.Rv_from (_, "via-connected") -> ()
   | _ -> Alcotest.fail "recv at bound socket")

let test_udp_buffer_overflow_drops () =
  let env = setup () in
  let b = Netstack.new_socket env.ns1 Socket.Dgram in
  Sockopt.set b.Socket.opts Sockopt.SO_RCVBUF 1000;
  (match Netstack.bind env.ns1 b { Addr.ip = env.ip1; port = 6100 } with
   | Ok () -> ()
   | Error e -> Alcotest.failf "bind: %s" (Errno.to_string e));
  let a = Netstack.new_socket env.ns0 Socket.Dgram in
  for _ = 1 to 10 do
    ignore (Netstack.sendto env.ns0 a { Addr.ip = env.ip1; port = 6100 } (String.make 300 'd'))
  done;
  run env;
  (* only 3 * 300 = 900 bytes fit *)
  check tint "drops beyond rcvbuf" 3 (Queue.length b.Socket.dgrams)

let prop_addr_roundtrip =
  QCheck.Test.make ~name:"ip dotted-quad roundtrip" ~count:200
    QCheck.(quad (int_bound 255) (int_bound 255) (int_bound 255) (int_bound 255))
    (fun (a, b, c, d) ->
      let ip = Addr.make_ip a b c d in
      Addr.ip_of_string (Addr.ip_to_string ip) = ip)

let test_sockopt_defaults_and_save () =
  let t = Sockopt.create () in
  check tint "rcvbuf default" 262144 (Sockopt.get t Sockopt.SO_RCVBUF);
  Sockopt.set t Sockopt.TCP_NODELAY 1;
  let v = Sockopt.to_value t in
  let t2 = Sockopt.of_value v in
  check tint "nodelay restored" 1 (Sockopt.get t2 Sockopt.TCP_NODELAY);
  check tint "mss restored" 1448 (Sockopt.get t2 Sockopt.TCP_MAXSEG)

let test_ephemeral_ports_distinct () =
  let env = setup () in
  let mk () =
    let s = Netstack.new_socket env.ns0 Socket.Stream in
    (match Netstack.bind env.ns0 s { Addr.ip = env.ip0; port = 0 } with
     | Ok () -> ()
     | Error e -> Alcotest.failf "bind: %s" (Errno.to_string e));
    (Option.get s.Socket.local).Addr.port
  in
  let ports = List.init 50 (fun _ -> mk ()) in
  check tint "all distinct" 50 (List.length (List.sort_uniq Int.compare ports))

let test_bind_conflict () =
  let env = setup () in
  let s1 = Netstack.new_socket env.ns0 Socket.Stream in
  (match Netstack.bind env.ns0 s1 { Addr.ip = env.ip0; port = 8080 } with
   | Ok () -> ()
   | Error e -> Alcotest.failf "bind: %s" (Errno.to_string e));
  (match Netstack.listen env.ns0 s1 4 with
   | Ok () -> ()
   | Error e -> Alcotest.failf "listen: %s" (Errno.to_string e));
  let s2 = Netstack.new_socket env.ns0 Socket.Stream in
  (match Netstack.bind env.ns0 s2 { Addr.ip = env.ip0; port = 8080 } with
   | Error Errno.EADDRINUSE -> ()
   | Ok () -> Alcotest.fail "expected EADDRINUSE"
   | Error e -> Alcotest.failf "unexpected: %s" (Errno.to_string e))

let test_raw_ip () =
  let env = setup () in
  let a = Netstack.new_socket env.ns0 (Socket.Raw 89) in
  let b = Netstack.new_socket env.ns1 (Socket.Raw 89) in
  ignore b;
  (match Netstack.sendto env.ns0 a { Addr.ip = env.ip1; port = 0 } "ospf-hello" with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "raw send: %s" (Errno.to_string e));
  run env;
  (match b.Socket.dispatch.d_recvmsg b Socket.plain_recv 100 with
   | Socket.Rv_from (_, "ospf-hello") -> ()
   | _ -> Alcotest.fail "raw recv")

(* property: whatever the seed, loss rate and write pattern, TCP delivers
   exactly the sent byte stream, in order *)
let prop_tcp_integrity =
  QCheck.Test.make ~name:"tcp delivers the exact byte stream under loss" ~count:25
    QCheck.(triple small_int (int_range 0 25) (list_of_size Gen.(int_range 1 12) (int_range 1 5000)))
    (fun (seed, loss_pct, writes) ->
      let env = setup ~seed:(seed + 1) () in
      let _, client, server = establish env in
      Fabric.set_loss_prob env.fabric (float_of_int loss_pct /. 100.0);
      let data =
        String.concat ""
          (List.mapi (fun i n -> String.make n (Char.chr ((i + 65) land 0xff))) writes)
      in
      let sent = ref 0 in
      let received = Buffer.create (String.length data) in
      let guard = ref 0 in
      while Buffer.length received < String.length data && !guard < 3000 do
        incr guard;
        (if !sent < String.length data then
           match Tcp.send_data client (String.sub data !sent (String.length data - !sent)) with
           | Ok n -> sent := !sent + n
           | Error _ -> ());
        run_for env (Simtime.ms 120);
        (match server.Socket.dispatch.d_recvmsg server Socket.plain_recv (1 lsl 20) with
         | Socket.Rv_data d -> Buffer.add_string received d
         | _ -> ());
        Tcp.after_app_read server
      done;
      String.equal data (Buffer.contents received))

let test_keepalive_detects_dead_peer () =
  let env = setup () in
  let _, client, server = establish env in
  (* aggressive keepalive so the test is quick: 1s idle, 1s interval, 2 probes *)
  Sockopt.set client.Socket.opts Sockopt.SO_KEEPALIVE 1;
  Sockopt.set client.Socket.opts Sockopt.TCP_KEEPIDLE 1;
  Sockopt.set client.Socket.opts Sockopt.TCP_KEEPINTVL 1;
  Sockopt.set client.Socket.opts Sockopt.TCP_KEEPCNT 2;
  Tcp.refresh_keepalive client;
  (* a healthy idle peer answers the probes: connection stays up *)
  run_for env (Simtime.sec 6.0);
  check tbool "alive while peer answers" true
    (Socket.tcp_state client = Socket.St_established);
  (* now the peer dies silently (all its traffic blackholed) *)
  Netfilter.block (Fabric.netfilter env.fabric) env.ip1;
  run_for env (Simtime.sec 8.0);
  check tbool "dead peer detected" true (Socket.tcp_state client = Socket.St_closed);
  check tbool "etimedout" true (client.Socket.err = Some Errno.ETIMEDOUT);
  ignore server

let test_keepalive_off_no_probes () =
  let env = setup () in
  let _, client, _server = establish env in
  (* keepalive NOT set: a silently dead peer goes unnoticed on an idle
     connection (classic TCP semantics) *)
  Netfilter.block (Fabric.netfilter env.fabric) env.ip1;
  run_for env (Simtime.sec 10.0);
  check tbool "still nominally established" true
    (Socket.tcp_state client = Socket.St_established)

(* PCB invariant under load: recv1 >= acked2 (paper Figure 4) *)
let test_pcb_invariant () =
  let env = setup () in
  let _, client, server = establish env in
  for i = 1 to 20 do
    send_all client (Printf.sprintf "chunk-%03d." i);
    run_for env (Simtime.ms 2)
  done;
  run env;
  let ct = Option.get client.Socket.tcb and st = Option.get server.Socket.tcb in
  check tbool "recv1 >= acked2" true (st.Socket.rcv_nxt >= ct.Socket.snd_una);
  check tbool "acked <= sent" true (ct.Socket.snd_una <= ct.Socket.snd_nxt)

let () =
  Alcotest.run "simnet"
    [ ( "sockbuf",
        [ Alcotest.test_case "basic" `Quick test_sockbuf_basic;
          Alcotest.test_case "partial chunks" `Quick test_sockbuf_partial_chunks;
          QCheck_alcotest.to_alcotest prop_sockbuf_fifo ] );
      ( "tcp",
        [ Alcotest.test_case "handshake" `Quick test_tcp_handshake;
          Alcotest.test_case "data transfer" `Quick test_tcp_data_transfer;
          Alcotest.test_case "large transfer" `Quick test_tcp_large_transfer;
          Alcotest.test_case "loss recovery" `Quick test_tcp_loss_recovery;
          Alcotest.test_case "image stream under loss is deterministic" `Quick
            test_tcp_image_stream_lossy_deterministic;
          Alcotest.test_case "fin/eof" `Quick test_tcp_fin_eof;
          Alcotest.test_case "full close" `Quick test_tcp_full_close;
          Alcotest.test_case "connection refused" `Quick test_tcp_connection_refused;
          Alcotest.test_case "urgent data (oob)" `Quick test_tcp_oob;
          Alcotest.test_case "peek" `Quick test_tcp_peek;
          Alcotest.test_case "zero-window flow control" `Quick test_tcp_zero_window_flow_control;
          Alcotest.test_case "keepalive detects dead peer" `Quick
            test_keepalive_detects_dead_peer;
          Alcotest.test_case "keepalive off: no probes" `Quick test_keepalive_off_no_probes;
          Alcotest.test_case "pcb invariant" `Quick test_pcb_invariant;
          QCheck_alcotest.to_alcotest prop_tcp_integrity ] );
      ( "netfilter",
        [ Alcotest.test_case "block + retransmit recovery" `Quick
            test_netfilter_block_and_recover ] );
      ( "altqueue",
        [ Alcotest.test_case "interposition order" `Quick test_altqueue_interposition;
          Alcotest.test_case "poll/release" `Quick test_altqueue_poll_and_release ] );
      ( "udp",
        [ Alcotest.test_case "basic + boundaries" `Quick test_udp_basic;
          Alcotest.test_case "connected demux" `Quick test_udp_connected_demux;
          Alcotest.test_case "overflow drops" `Quick test_udp_buffer_overflow_drops ] );
      ( "misc",
        [ QCheck_alcotest.to_alcotest prop_addr_roundtrip;
          Alcotest.test_case "sockopt save/restore" `Quick test_sockopt_defaults_and_save;
          Alcotest.test_case "ephemeral ports" `Quick test_ephemeral_ports_distinct;
          Alcotest.test_case "bind conflict" `Quick test_bind_conflict;
          Alcotest.test_case "raw ip" `Quick test_raw_ip ] ) ]
